// Posted-price baseline.
//
// The simplest truthful design in the crowdsensing literature: the
// platform posts a fixed price p; each slot, every task is offered to the
// longest-waiting active unallocated phone whose claimed cost is at most p
// (take-it-or-leave-it), and every server is paid exactly p. Truthfulness
// is immediate -- a phone's report only decides whether it is willing at
// p, and accepting iff c_i <= p is dominant -- but the mechanism is
// price-blind: set p too low and tasks starve, too high and the platform
// overpays. It calibrates how much the paper's adaptive critical-value
// pricing buys over the best fixed price (best_posted_price finds the
// welfare-optimal p in hindsight).
#pragma once

#include "auction/mechanism.hpp"

namespace mcs::auction {

struct PostedPriceConfig {
  Money price;  ///< the posted take-it-or-leave-it price
};

class PostedPriceMechanism final : public Mechanism {
 public:
  explicit PostedPriceMechanism(PostedPriceConfig config);
  explicit PostedPriceMechanism(Money price)
      : PostedPriceMechanism(PostedPriceConfig{price}) {}

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override;

 private:
  PostedPriceConfig config_;
};

/// The hindsight-optimal posted price for a scenario under truthful bids:
/// evaluates every distinct cost (the only prices at which the allocation
/// changes) and returns the one maximizing social welfare, favoring the
/// lowest price on ties. Returns 0 for scenarios with no phones.
[[nodiscard]] Money best_posted_price(const model::Scenario& scenario);

}  // namespace mcs::auction
