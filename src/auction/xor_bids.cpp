#include "auction/xor_bids.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "matching/hungarian.hpp"

namespace mcs::auction {

namespace {

void check_profile(const model::Scenario& scenario,
                   const XorBidProfile& profile) {
  if (profile.size() != scenario.phones.size()) {
    throw InvalidScenarioError("XOR profile size differs from phone count");
  }
  for (const XorBid& bid : profile) {
    for (const BidOption& option : bid) {
      if (option.window.begin().value() < 1 ||
          option.window.end().value() > scenario.num_slots) {
        throw InvalidScenarioError("XOR option window outside the round");
      }
      if (option.cost.is_negative() || option.cost >= Money::max()) {
        throw InvalidScenarioError("XOR option cost out of range");
      }
    }
  }
}

/// Cheapest option of `bid` covering `slot` (ties: lowest index), or -1.
int best_option_for(const XorBid& bid, Slot slot) {
  int best = -1;
  for (std::size_t k = 0; k < bid.size(); ++k) {
    if (!bid[k].window.contains(slot)) continue;
    if (best < 0 || bid[k].cost < bid[static_cast<std::size_t>(best)].cost) {
      best = static_cast<int>(k);
    }
  }
  return best;
}

}  // namespace

int XorOutcome::allocated_count() const {
  int count = 0;
  for (const auto& a : assignments) {
    if (a) ++count;
  }
  return count;
}

bool XorOutcome::is_winner(PhoneId phone) const {
  for (const auto& a : assignments) {
    if (a && a->phone == phone) return true;
  }
  return false;
}

Money XorOutcome::claimed_welfare(const model::Scenario& scenario,
                                  const XorBidProfile& profile) const {
  Money welfare;
  for (std::size_t t = 0; t < assignments.size(); ++t) {
    if (const auto& a = assignments[t]) {
      welfare += scenario.value_of(TaskId{static_cast<int>(t)}) -
                 profile[static_cast<std::size_t>(a->phone.value())]
                        [static_cast<std::size_t>(a->option)]
                            .cost;
    }
  }
  return welfare;
}

Money XorOutcome::utility(const XorBidProfile& profile, PhoneId phone) const {
  Money cost;
  for (const auto& a : assignments) {
    if (a && a->phone == phone) {
      cost = profile[static_cast<std::size_t>(phone.value())]
                    [static_cast<std::size_t>(a->option)]
                        .cost;
    }
  }
  return payments[static_cast<std::size_t>(phone.value())] - cost;
}

void XorOutcome::validate(const model::Scenario& scenario,
                          const XorBidProfile& profile) const {
  MCS_ASSERT(assignments.size() == static_cast<std::size_t>(scenario.task_count()),
             "assignment vector size mismatch");
  MCS_ASSERT(payments.size() == profile.size(), "payment vector size mismatch");
  std::vector<char> exercised(profile.size(), 0);
  for (std::size_t t = 0; t < assignments.size(); ++t) {
    const auto& a = assignments[t];
    if (!a) continue;
    const auto phone = static_cast<std::size_t>(a->phone.value());
    MCS_ASSERT(phone < profile.size(), "assigned phone out of range");
    MCS_ASSERT(!exercised[phone], "phone exercised two options");
    exercised[phone] = 1;
    MCS_ASSERT(a->option >= 0 &&
                   static_cast<std::size_t>(a->option) < profile[phone].size(),
               "option index out of range");
    const Slot slot = scenario.tasks[t].slot;
    MCS_ASSERT(profile[phone][static_cast<std::size_t>(a->option)]
                   .window.contains(slot),
               "exercised option does not cover the task's slot");
  }
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (!exercised[i]) {
      MCS_ASSERT(payments[i].is_zero(), "loser received a payment");
    }
  }
}

matching::WeightMatrix build_xor_graph(const model::Scenario& scenario,
                                       const XorBidProfile& profile) {
  check_profile(scenario, profile);
  matching::WeightMatrix graph(scenario.task_count(), scenario.phone_count());
  for (int t = 0; t < scenario.task_count(); ++t) {
    const Slot slot = scenario.tasks[static_cast<std::size_t>(t)].slot;
    const Money value = scenario.value_of(TaskId{t});
    for (int i = 0; i < scenario.phone_count(); ++i) {
      const int option =
          best_option_for(profile[static_cast<std::size_t>(i)], slot);
      if (option >= 0) {
        graph.set(t, i,
                  value - profile[static_cast<std::size_t>(i)]
                                 [static_cast<std::size_t>(option)]
                                     .cost);
      }
    }
  }
  return graph;
}

Money optimal_xor_welfare(const model::Scenario& scenario,
                          const XorBidProfile& profile) {
  matching::MaxWeightMatcher matcher(build_xor_graph(scenario, profile));
  return matcher.total_weight();
}

XorOutcome run_xor_vcg(const model::Scenario& scenario,
                       const XorBidProfile& profile) {
  scenario.validate();
  const matching::WeightMatrix graph = build_xor_graph(scenario, profile);
  matching::MaxWeightMatcher matcher(graph);
  const matching::Matching& matching = matcher.solve();
  const Money welfare_all = matcher.total_weight();

  XorOutcome outcome;
  outcome.assignments.assign(
      static_cast<std::size_t>(scenario.task_count()), std::nullopt);
  outcome.payments.assign(profile.size(), Money{});

  for (int t = 0; t < scenario.task_count(); ++t) {
    const auto col = matching.row_to_col[static_cast<std::size_t>(t)];
    if (!col) continue;
    const Slot slot = scenario.tasks[static_cast<std::size_t>(t)].slot;
    const int option =
        best_option_for(profile[static_cast<std::size_t>(*col)], slot);
    MCS_ASSERT(option >= 0, "matched pair must have a covering option");
    outcome.assignments[static_cast<std::size_t>(t)] =
        XorAssignment{PhoneId{*col}, option};

    // Phone-level VCG: remove ALL of the phone's options.
    const Money without = matcher.total_weight_without_column(*col);
    const Money exercised_cost = profile[static_cast<std::size_t>(*col)]
                                        [static_cast<std::size_t>(option)]
                                            .cost;
    const Money payment = welfare_all + exercised_cost - without;
    MCS_ENSURES(payment >= exercised_cost, "VCG payment below exercised cost");
    outcome.payments[static_cast<std::size_t>(*col)] = payment;
  }

  outcome.validate(scenario, profile);
  return outcome;
}

XorBidProfile as_xor_profile(const model::BidProfile& bids) {
  XorBidProfile profile;
  profile.reserve(bids.size());
  for (const model::Bid& bid : bids) {
    profile.push_back(XorBid{BidOption{bid.window, bid.claimed_cost}});
  }
  return profile;
}

}  // namespace mcs::auction
