// Per-slot second-price baseline -- the scheme the paper shows is NOT
// time-truthful (Section V-C, Fig. 5).
//
// Allocation is the same greedy rule as Algorithm 1. Payment generalizes
// the second-price idea slot-by-slot: every winner of slot t is paid the
// claimed cost of the best losing bid still in the pool (the (r_t + 1)-th
// cheapest); with one task per slot this is exactly the textbook second
// price. The paper's counterexample: by delaying its reported arrival,
// a phone can move its win into a slot with a pricier runner-up and raise
// its payment (4 -> 8 in Fig. 5) -- the truthfulness audit reproduces this
// violation, which motivates Algorithm 2's over-time critical value.
#pragma once

#include "auction/mechanism.hpp"
#include "auction/online_greedy.hpp"

namespace mcs::auction {

struct SecondPriceConfig {
  /// When a slot has no losing bid left, the winner is paid this fallback.
  enum class NoRunnerUp {
    kOwnBid,    ///< first-price fallback (default)
    kTaskValue, ///< pay the task value nu
  };
  NoRunnerUp no_runner_up = NoRunnerUp::kOwnBid;

  /// Shared allocation knobs (same greedy rule as the online mechanism).
  OnlineGreedyConfig allocation;
};

class SecondPriceBaseline final : public Mechanism {
 public:
  SecondPriceBaseline() = default;
  explicit SecondPriceBaseline(SecondPriceConfig config) : config_(config) {}

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override {
    return "per-slot-second-price";
  }

 private:
  SecondPriceConfig config_;
};

}  // namespace mcs::auction
