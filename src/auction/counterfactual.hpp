// Shared-prefix counterfactual engine for Algorithm 2.
//
// Every payment (and every bisection probe of a critical value) re-runs
// Algorithm 1 with one bid removed or its claimed cost changed. The greedy
// pool evolves deterministically from the bid arrivals, so the run without
// bid B_i -- or with B_i's cost modified -- is *byte-identical* to the
// factual run for every slot before i's reported arrival a~_i: B_i cannot
// influence a pool it has not joined yet. The factual pass therefore
// checkpoints its per-slot-start state (pool + task cursor), and each
// counterfactual forks from the checkpoint at a~_i instead of replaying
// from slot 1. A full replay costs O(m (n log n + gamma)); a fork costs
// only the suffix [a~_i, d~_i], which for short reported windows is a
// small constant number of slots.
//
// The engine is read-only after construction and safe to share across
// threads: OnlineGreedyMechanism fans per-winner payment derivations out
// over a thread pool on top of it (results written back in fixed winner
// order, per-worker metrics merged deterministically).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "auction/online_greedy.hpp"
#include "common/money.hpp"
#include "model/scenario.hpp"

namespace mcs::auction {

/// One pooled bid. Ordering by (claimed cost, phone id) ascending is the
/// total deterministic order that makes the allocation rule monotone
/// (Definition 10) and the audits exact.
struct PoolBid {
  std::int64_t cost_micros;
  int phone;

  friend bool operator<(const PoolBid& a, const PoolBid& b) {
    if (a.cost_micros != b.cost_micros) return a.cost_micros < b.cost_micros;
    return a.phone < b.phone;
  }
  friend bool operator==(const PoolBid& a, const PoolBid& b) = default;
};

/// Per-slot snapshots of Algorithm 1's mutable state, captured by the
/// factual pass of run_greedy_allocation (capture parameter). slots[t] is
/// the state at the *start* of slot t, before slot-t arrivals and
/// departures are folded in -- so a phone reporting arrival a~ is absent
/// from slots[a~], which is exactly the fork point property the engine
/// relies on. Index 0 is unused (slots are 1-based).
struct GreedyCheckpoints {
  struct SlotStart {
    std::vector<PoolBid> pool;  ///< active unallocated bids, sorted ascending
    std::size_t next_task{0};   ///< cursor into the dense task-id sequence
  };
  std::vector<SlotStart> slots;
  /// Admitted phones grouped by reported arrival slot (reserve-rejected
  /// bids never appear) -- the same index the factual pass allocated from.
  std::vector<std::vector<int>> arrivals;
};

/// Counterfactual evaluator over one (scenario, bids, config) triple.
///
/// Holds references to the scenario and bid profile: both must outlive the
/// engine. All public methods are const and thread-safe; counters are
/// recorded through the caller thread's obs::current_registry(), so
/// parallel callers with worker-local registries merge deterministically.
class CounterfactualEngine {
 public:
  /// Builds checkpoints with an internal factual pass (event recording is
  /// suppressed for its scope: the factual trail, if wanted, is the
  /// caller's to record). Prefer the capturing constructor when a factual
  /// run is already being made.
  CounterfactualEngine(const model::Scenario& scenario,
                       const model::BidProfile& bids,
                       const OnlineGreedyConfig& config);

  /// Adopts checkpoints captured by an earlier factual
  /// run_greedy_allocation(..., &checkpoints) pass over the same
  /// (scenario, bids, config) -- no extra allocation run.
  CounterfactualEngine(const model::Scenario& scenario,
                       const model::BidProfile& bids,
                       const OnlineGreedyConfig& config,
                       GreedyCheckpoints checkpoints);

  /// What Algorithm 2 needs from one counterfactual slot.
  struct ReplaySlot {
    Slot slot{0};
    /// Highest winning claimed cost of the slot (the r_t-th winner of
    /// Algorithm 2 line 6), with the phone that claimed it.
    std::optional<Money> dearest_cost;
    std::optional<PhoneId> dearest_phone;
    /// Scarcity: max payment cap contributed by tasks that went unserved
    /// in this slot (reserve price if set, else task value; see
    /// OnlineGreedyConfig).
    std::optional<Money> scarce_cap;
  };

  /// Replays slots [from_slot, last_slot] of the run without `exclude`,
  /// forking from the checkpoint at exclude's reported arrival (which must
  /// be <= from_slot; a winner's win slot always is). Clamps last_slot to
  /// the checkpointed horizon.
  [[nodiscard]] std::vector<ReplaySlot> replay_without(
      PhoneId exclude, Slot::rep_type from_slot,
      Slot::rep_type last_slot) const;

  /// Does `phone` win when claiming `cost`, all other bids fixed? Forks at
  /// phone's reported arrival and exits early on the first assignment (a
  /// pooled bid, once allocated, stays a winner). Equivalent to re-running
  /// the full allocation on with_bid(bids, phone, {window, cost}).
  [[nodiscard]] bool wins_with_cost(PhoneId phone, Money cost) const;

  /// Result of a public critical-value probe (critical_value_of).
  struct CriticalValueProbe {
    /// Whether the phone wins at claimed cost 0 (all other bids fixed).
    /// When false there is no winning claim at all and `critical` is empty.
    bool winnable{false};
    /// Bounded critical claimed cost when one exists; empty when the phone
    /// is unwinnable, or wins at every probed cost (supply scarcity).
    std::optional<Money> critical;
  };

  /// Read-only critical-value probe of `phone` under the greedy rule with
  /// everyone else's reported bids fixed -- the seam the flight recorder's
  /// explain path uses, exposed so strategic-agent code (the arena's
  /// best-responder) can ask "what is the highest claim that still wins?"
  /// without duplicating the bisection. Delegates to
  /// greedy_critical_value(*this, phone) after screening out unwinnable
  /// phones (which the bisection preconditions away). Thread-safe.
  [[nodiscard]] CriticalValueProbe critical_value_of(PhoneId phone) const;

  /// Last slot covered by the checkpoints (the factual pass's horizon).
  [[nodiscard]] Slot::rep_type horizon() const {
    return static_cast<Slot::rep_type>(checkpoints_.slots.size()) - 1;
  }

  [[nodiscard]] const model::Scenario& scenario() const { return scenario_; }
  [[nodiscard]] const model::BidProfile& bids() const { return bids_; }
  [[nodiscard]] const OnlineGreedyConfig& config() const { return config_; }

 private:
  void build_indexes();

  const model::Scenario& scenario_;
  const model::BidProfile& bids_;
  OnlineGreedyConfig config_;
  GreedyCheckpoints checkpoints_;
  /// Admitted phones grouped by the slot *after* their reported departure
  /// (the slot whose sweep erases them), mirroring checkpoints_.arrivals.
  std::vector<std::vector<int>> departures_;
  std::vector<int> tasks_per_slot_;
};

}  // namespace mcs::auction
