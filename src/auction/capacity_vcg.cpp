#include "auction/capacity_vcg.hpp"

#include <map>
#include <utility>

#include "common/assert.hpp"
#include "matching/min_cost_flow.hpp"

namespace mcs::auction {

CapacityProfile uniform_capacity(int phone_count, int capacity) {
  MCS_EXPECTS(phone_count >= 0 && capacity >= 0,
              "uniform_capacity arguments must be >= 0");
  return CapacityProfile(static_cast<std::size_t>(phone_count), capacity);
}

int CapacityOutcome::allocated_count() const {
  int count = 0;
  for (const auto& phone : task_to_phone) {
    if (phone) ++count;
  }
  return count;
}

int CapacityOutcome::tasks_served_by(PhoneId phone) const {
  MCS_EXPECTS(phone.value() >= 0 &&
                  static_cast<std::size_t>(phone.value()) < phone_to_tasks.size(),
              "phone id out of range");
  return static_cast<int>(
      phone_to_tasks[static_cast<std::size_t>(phone.value())].size());
}

Money CapacityOutcome::social_welfare(const model::Scenario& scenario) const {
  Money welfare;
  for (std::size_t t = 0; t < task_to_phone.size(); ++t) {
    if (const auto& phone = task_to_phone[t]) {
      welfare += scenario.value_of(TaskId{static_cast<int>(t)}) -
                 scenario.phone(*phone).cost;
    }
  }
  return welfare;
}

Money CapacityOutcome::claimed_welfare(const model::Scenario& scenario,
                                       const model::BidProfile& bids) const {
  Money welfare;
  for (std::size_t t = 0; t < task_to_phone.size(); ++t) {
    if (const auto& phone = task_to_phone[t]) {
      welfare += scenario.value_of(TaskId{static_cast<int>(t)}) -
                 bids[static_cast<std::size_t>(phone->value())].claimed_cost;
    }
  }
  return welfare;
}

Money CapacityOutcome::total_payment() const {
  Money total;
  for (const Money p : payments) total += p;
  return total;
}

Money CapacityOutcome::utility(const model::Scenario& scenario,
                               PhoneId phone) const {
  const Money payment = payments[static_cast<std::size_t>(phone.value())];
  return payment - scenario.phone(phone).cost * tasks_served_by(phone);
}

void CapacityOutcome::validate(const model::Scenario& scenario,
                               const model::BidProfile& bids,
                               const CapacityProfile& capacities) const {
  MCS_ASSERT(task_to_phone.size() == static_cast<std::size_t>(scenario.task_count()),
             "task map size mismatch");
  MCS_ASSERT(phone_to_tasks.size() == scenario.phones.size(),
             "phone map size mismatch");
  MCS_ASSERT(payments.size() == scenario.phones.size(),
             "payment vector size mismatch");
  MCS_ASSERT(capacities.size() == scenario.phones.size(),
             "capacity profile size mismatch");

  for (int i = 0; i < scenario.phone_count(); ++i) {
    const auto& tasks = phone_to_tasks[static_cast<std::size_t>(i)];
    MCS_ASSERT(static_cast<int>(tasks.size()) <=
                   capacities[static_cast<std::size_t>(i)],
               "phone exceeds its capacity");
    std::vector<Slot> slots;
    for (const TaskId task : tasks) {
      MCS_ASSERT(task_to_phone[static_cast<std::size_t>(task.value())] ==
                     PhoneId{i},
                 "cross-links broken");
      const Slot slot = scenario.tasks[static_cast<std::size_t>(task.value())].slot;
      MCS_ASSERT(bids[static_cast<std::size_t>(i)].window.contains(slot),
                 "task outside the phone's reported window");
      for (const Slot other : slots) {
        MCS_ASSERT(other != slot, "phone serves two tasks in one slot");
      }
      slots.push_back(slot);
    }
    if (tasks.empty()) {
      MCS_ASSERT(payments[static_cast<std::size_t>(i)].is_zero(),
                 "loser received a payment");
    }
  }
}

namespace {

/// Solves the capacitated allocation as a min-cost flow; fills
/// `outcome_tasks` (task -> phone) when non-null and returns the optimal
/// claimed welfare. `excluded` (if set) removes one phone entirely (the
/// VCG marginal query).
Money solve_flow(const model::Scenario& scenario, const model::BidProfile& bids,
                 const CapacityProfile& capacities,
                 std::optional<PhoneId> excluded,
                 std::vector<std::optional<PhoneId>>* outcome_tasks) {
  const int gamma = scenario.task_count();
  const int n = scenario.phone_count();

  // Node layout: 0 = source, 1..gamma tasks, then (phone, slot) pair nodes
  // (created on demand), then phone nodes, then sink (appended last).
  // We precompute pair nodes per (phone, slot with >= 1 task in window).
  std::map<std::pair<int, Slot::rep_type>, int> pair_node;
  int next_node = 1 + gamma;
  std::vector<Slot::rep_type> task_slots(static_cast<std::size_t>(gamma));
  for (int t = 0; t < gamma; ++t) {
    task_slots[static_cast<std::size_t>(t)] =
        scenario.tasks[static_cast<std::size_t>(t)].slot.value();
  }
  for (int i = 0; i < n; ++i) {
    if (excluded && excluded->value() == i) continue;
    if (capacities[static_cast<std::size_t>(i)] <= 0) continue;
    const model::Bid& bid = bids[static_cast<std::size_t>(i)];
    for (int t = 0; t < gamma; ++t) {
      const Slot::rep_type s = task_slots[static_cast<std::size_t>(t)];
      if (bid.window.contains(Slot{s})) {
        const auto key = std::make_pair(i, s);
        if (!pair_node.contains(key)) pair_node[key] = next_node++;
      }
    }
  }
  const int phone_base = next_node;
  next_node += n;
  const int sink = next_node++;
  const int source = 0;

  matching::MinCostFlow flow(next_node);
  std::vector<std::vector<std::pair<int, int>>> task_edges(
      static_cast<std::size_t>(gamma));  // (edge id, phone)

  for (int t = 0; t < gamma; ++t) {
    flow.add_edge(source, 1 + t, 1, 0);
    flow.add_edge(1 + t, sink, 1, 0);  // bypass: leave unserved
  }
  for (const auto& [key, node] : pair_node) {
    const auto& [phone, slot] = key;
    flow.add_edge(node, phone_base + phone, 1, 0);
    const Money bid_cost = bids[static_cast<std::size_t>(phone)].claimed_cost;
    for (int t = 0; t < gamma; ++t) {
      if (task_slots[static_cast<std::size_t>(t)] != slot) continue;
      const Money w = scenario.value_of(TaskId{t}) - bid_cost;
      const int edge =
          flow.add_edge(1 + t, node, 1, -w.micros());
      task_edges[static_cast<std::size_t>(t)].push_back({edge, phone});
    }
  }
  for (int i = 0; i < n; ++i) {
    if (excluded && excluded->value() == i) continue;
    flow.add_edge(phone_base + i, sink,
                  capacities[static_cast<std::size_t>(i)], 0);
  }

  const matching::MinCostFlow::Result result = flow.solve(source, sink);
  MCS_ASSERT(result.flow == gamma, "bypass edges guarantee full task flow");

  if (outcome_tasks != nullptr) {
    outcome_tasks->assign(static_cast<std::size_t>(gamma), std::nullopt);
    for (int t = 0; t < gamma; ++t) {
      for (const auto& [edge, phone] : task_edges[static_cast<std::size_t>(t)]) {
        if (flow.flow_on(edge) > 0) {
          (*outcome_tasks)[static_cast<std::size_t>(t)] = PhoneId{phone};
        }
      }
    }
  }
  return Money::from_micros(-result.cost);
}

void check_inputs(const model::Scenario& scenario, const model::BidProfile& bids,
                  const CapacityProfile& capacities) {
  scenario.validate();
  model::validate_bids(scenario, bids);
  MCS_EXPECTS(capacities.size() == scenario.phones.size(),
              "capacity profile size mismatch");
  for (const int capacity : capacities) {
    MCS_EXPECTS(capacity >= 0, "capacities must be >= 0");
  }
}

}  // namespace

Money optimal_capacity_welfare(const model::Scenario& scenario,
                               const model::BidProfile& bids,
                               const CapacityProfile& capacities) {
  check_inputs(scenario, bids, capacities);
  return solve_flow(scenario, bids, capacities, std::nullopt, nullptr);
}

CapacityOutcome run_capacity_vcg(const model::Scenario& scenario,
                                 const model::BidProfile& bids,
                                 const CapacityProfile& capacities) {
  check_inputs(scenario, bids, capacities);

  CapacityOutcome outcome;
  const Money welfare_all =
      solve_flow(scenario, bids, capacities, std::nullopt, &outcome.task_to_phone);
  outcome.phone_to_tasks.assign(scenario.phones.size(), {});
  outcome.payments.assign(scenario.phones.size(), Money{});
  for (std::size_t t = 0; t < outcome.task_to_phone.size(); ++t) {
    if (const auto& phone = outcome.task_to_phone[t]) {
      outcome.phone_to_tasks[static_cast<std::size_t>(phone->value())]
          .push_back(TaskId{static_cast<int>(t)});
    }
  }

  for (int i = 0; i < scenario.phone_count(); ++i) {
    const PhoneId phone{i};
    const int served = outcome.tasks_served_by(phone);
    if (served == 0) continue;
    const Money without =
        solve_flow(scenario, bids, capacities, phone, nullptr);
    // VCG: q_i * b_i plus the marginal contribution.
    const Money payment =
        bids[static_cast<std::size_t>(i)].claimed_cost * served +
        (welfare_all - without);
    MCS_ENSURES(payment >=
                    bids[static_cast<std::size_t>(i)].claimed_cost * served,
                "VCG payment below claimed cost");
    outcome.payments[static_cast<std::size_t>(i)] = payment;
  }

  outcome.validate(scenario, bids, capacities);
  return outcome;
}

}  // namespace mcs::auction
