#include "auction/online_greedy.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::auction {

namespace {

/// Pool ordering: by (claimed cost, phone id) ascending. A total,
/// deterministic order is what makes the allocation rule monotone
/// (Definition 10) and the audits exact.
struct PoolEntry {
  std::int64_t cost_micros;
  int phone;

  friend bool operator<(const PoolEntry& a, const PoolEntry& b) {
    if (a.cost_micros != b.cost_micros) return a.cost_micros < b.cost_micros;
    return a.phone < b.phone;
  }
};

}  // namespace

GreedyRun run_greedy_allocation(const model::Scenario& scenario,
                                const model::BidProfile& bids,
                                const OnlineGreedyConfig& config,
                                std::optional<PhoneId> exclude,
                                Slot::rep_type last_slot) {
  model::validate_bids(scenario, bids);
  const Slot::rep_type horizon =
      last_slot == 0 ? scenario.num_slots
                     : std::min(last_slot, scenario.num_slots);

  // Per-slot work counters, accumulated locally and published once at the
  // end of the run (one registry access instead of one per slot).
  obs::MetricsRegistry* const registry = obs::current_registry();
  static const std::vector<double> kPoolBuckets = {0,  1,   2,   5,   10,  20,
                                                   50, 100, 200, 500, 1000};
  obs::Histogram* const pool_hist =
      registry != nullptr
          ? &registry->histogram("auction.greedy.pool_size", &kPoolBuckets)
          : nullptr;
  std::int64_t pool_insertions = 0;
  std::int64_t tasks_assigned = 0;
  std::int64_t tasks_unserved = 0;

  // Arrival index: phones grouped by reported arrival slot. (Under
  // allocate_only_profitable, eligibility is checked per task at
  // allocation time, since the weighted-query extension gives tasks
  // individual values.)
  std::vector<std::vector<int>> arrivals(
      static_cast<std::size_t>(scenario.num_slots) + 1);
  for (int i = 0; i < scenario.phone_count(); ++i) {
    if (exclude && exclude->value() == i) continue;
    const model::Bid& bid = bids[static_cast<std::size_t>(i)];
    if (config.reserve_price && bid.claimed_cost > *config.reserve_price) {
      obs::log_event([&] {
        obs::Event event("bid_rejected");
        event.phone = i;
        event.slot = static_cast<std::int32_t>(bid.window.begin().value());
        event.with("reason", std::string("reserve"))
            .with("bid", bid.claimed_cost)
            .with("reserve", *config.reserve_price);
        return event;
      });
      continue;  // above the platform reserve: never admitted
    }
    obs::log_event([&] {
      obs::Event event("bid_admitted");
      event.phone = i;
      event.slot = static_cast<std::int32_t>(bid.window.begin().value());
      event.with("bid", bid.claimed_cost)
          .with("departs",
                static_cast<std::int64_t>(bid.window.end().value()));
      return event;
    });
    arrivals[static_cast<std::size_t>(bid.window.begin().value())].push_back(i);
  }

  const std::vector<int> tasks_per_slot = scenario.tasks_per_slot();
  // Tasks of each slot in id order (dense ids sorted by slot make this a
  // simple running cursor).
  std::size_t next_task = 0;

  GreedyRun run;
  run.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  run.slots.reserve(static_cast<std::size_t>(horizon));

  std::set<PoolEntry> pool;  // active unallocated bids
  const auto window_of = [&](int phone) -> const SlotInterval& {
    return bids[static_cast<std::size_t>(phone)].window;
  };

  for (Slot::rep_type t = 1; t <= horizon; ++t) {
    // Add newly arriving bids (Algorithm 1 line 3, first half).
    for (const int phone : arrivals[static_cast<std::size_t>(t)]) {
      pool.insert(PoolEntry{
          bids[static_cast<std::size_t>(phone)].claimed_cost.micros(), phone});
      ++pool_insertions;
    }
    // Drop departed bids (line 3, second half). Lazy would suffice for
    // allocation, but the recorded pool must match Fig. 4's "dynamic pool".
    for (auto it = pool.begin(); it != pool.end();) {
      if (window_of(it->phone).end().value() < t) {
        it = pool.erase(it);
      } else {
        ++it;
      }
    }

    GreedySlotRecord record;
    record.slot = Slot{t};
    record.pool.reserve(pool.size());
    for (const PoolEntry& entry : pool) {
      record.pool.push_back(PhoneId{entry.phone});
    }
    // The candidate pool at the start of the slot, cheapest first --
    // Fig. 4's "dynamic pool" as a replayable record.
    obs::log_event([&] {
      obs::Event event("slot_pool");
      event.slot = static_cast<std::int32_t>(t);
      std::vector<std::int64_t> ids;
      std::vector<std::int64_t> costs_micros;
      ids.reserve(pool.size());
      costs_micros.reserve(pool.size());
      for (const PoolEntry& entry : pool) {
        ids.push_back(entry.phone);
        costs_micros.push_back(entry.cost_micros);
      }
      event.with("pool", std::move(ids))
          .with("pool_costs_micros", std::move(costs_micros));
      return event;
    });

    // Allocate this slot's tasks to the cheapest pool members (lines 5-8).
    // With the weighted-query extension, serve high-value tasks first so a
    // dry pool starves only the least valuable ones (with uniform nu this
    // is plain id order).
    const int r_t = tasks_per_slot[static_cast<std::size_t>(t)];
    std::vector<TaskId> slot_tasks;
    slot_tasks.reserve(static_cast<std::size_t>(r_t));
    for (int k = 0; k < r_t; ++k) {
      const TaskId task{static_cast<int>(next_task + static_cast<std::size_t>(k))};
      MCS_ASSERT(scenario.tasks[static_cast<std::size_t>(task.value())].slot ==
                     Slot{t},
                 "task cursor out of sync with slot");
      slot_tasks.push_back(task);
    }
    next_task += static_cast<std::size_t>(r_t);
    std::stable_sort(slot_tasks.begin(), slot_tasks.end(),
                     [&](TaskId a, TaskId b) {
                       return scenario.value_of(a) > scenario.value_of(b);
                     });

    for (const TaskId task : slot_tasks) {
      if (pool.empty()) {
        obs::log_event([&] {
          obs::Event event("task_unserved");
          event.slot = static_cast<std::int32_t>(t);
          event.task = task.value();
          event.with("reason", std::string("pool_empty"));
          return event;
        });
        record.unserved.push_back(task);
        continue;
      }
      const PoolEntry chosen = *pool.begin();
      if (config.allocate_only_profitable &&
          Money::from_micros(chosen.cost_micros) > scenario.value_of(task)) {
        // The cheapest remaining bid already exceeds this task's value, so
        // no profitable assignment exists; the phone stays in the pool.
        obs::log_event([&] {
          obs::Event event("task_unserved");
          event.slot = static_cast<std::int32_t>(t);
          event.task = task.value();
          event.with("reason", std::string("unprofitable"))
              .with("cheapest_bid", Money::from_micros(chosen.cost_micros))
              .with("cheapest_phone",
                    static_cast<std::int64_t>(chosen.phone))
              .with("task_value", scenario.value_of(task));
          return event;
        });
        record.unserved.push_back(task);
        continue;
      }
      pool.erase(pool.begin());
      obs::log_event([&] {
        obs::Event event("task_assigned");
        event.slot = static_cast<std::int32_t>(t);
        event.task = task.value();
        event.phone = chosen.phone;
        event.with("bid", Money::from_micros(chosen.cost_micros))
            .with("task_value", scenario.value_of(task));
        // The runner-up bid (next-cheapest pool member) documents how
        // close the decision was; absent when the pool emptied.
        if (!pool.empty()) {
          event.with("runner_up_phone",
                     static_cast<std::int64_t>(pool.begin()->phone))
              .with("runner_up_bid",
                    Money::from_micros(pool.begin()->cost_micros));
        }
        return event;
      });
      run.allocation.assign(task, PhoneId{chosen.phone});
      record.winners.push_back(PhoneId{chosen.phone});
    }
    record.unallocated_tasks = static_cast<int>(record.unserved.size());
    tasks_assigned += static_cast<std::int64_t>(record.winners.size());
    tasks_unserved += static_cast<std::int64_t>(record.unserved.size());
    if (pool_hist != nullptr) {
      pool_hist->observe(static_cast<double>(pool.size()));
    }

    run.slots.push_back(std::move(record));
  }

  if (registry != nullptr) {
    registry->counter("auction.greedy.allocation_runs").add(1);
    registry->counter("auction.greedy.slots_processed")
        .add(static_cast<std::int64_t>(horizon));
    registry->counter("auction.greedy.pool_insertions").add(pool_insertions);
    registry->counter("auction.greedy.tasks_assigned").add(tasks_assigned);
    registry->counter("auction.greedy.tasks_unserved").add(tasks_unserved);
  }
  return run;
}

Money OnlineGreedyMechanism::compute_payment(const model::Scenario& scenario,
                                             const model::BidProfile& bids,
                                             PhoneId winner,
                                             Slot win_slot) const {
  const model::Bid& own_bid = bids[static_cast<std::size_t>(winner.value())];
  const Slot::rep_type depart = own_bid.window.end().value();

  // Counterfactual run without B_i up to the winner's reported departure
  // (Algorithm 2 re-allocates from slot 1: removing i can change history).
  // Each counterfactual evaluation is one probe of i's critical value --
  // the over-time analogue of a bisection probe (docs/observability.md).
  // Its inner allocation decisions are search bookkeeping, not decisions
  // of the recorded run, so event recording is suppressed for its scope.
  obs::count("auction.critical_value.probes");
  GreedyRun without;
  {
    const obs::ScopedEventLog suppress_counterfactual(nullptr);
    without = run_greedy_allocation(scenario, bids, config_, winner, depart);
  }

  Money payment = own_bid.claimed_cost;  // Algorithm 2 line 1: p_i <- b_i
  bool scarce = false;
  Money scarce_cap;
  // Which counterfactual slot winner set the final payment (the argmax of
  // line 6) -- the derivation reference of the payment record.
  std::optional<PhoneId> setter_phone;
  Slot setter_slot{0};
  for (const GreedySlotRecord& record : without.slots) {
    if (record.slot < win_slot) continue;  // only slots in [t'_i, d~_i]
    for (const TaskId task : record.unserved) {
      // Without i this task goes unserved. i's winning threshold for it is
      // the reserve price (if set: bids above it never enter), else the
      // task's value under profitable-only, else unbounded -- in which
      // case the task's value serves as the documented cap.
      scarce = true;
      Money cap = scenario.value_of(task);
      if (config_.reserve_price) {
        cap = config_.allocate_only_profitable
                  ? std::min(*config_.reserve_price, cap)
                  : *config_.reserve_price;
      }
      scarce_cap = std::max(scarce_cap, cap);
    }
    if (!record.winners.empty()) {
      // Line 6: the r_t-th (highest-cost) winner of the slot.
      const PhoneId last = record.winners.back();
      const Money rival =
          bids[static_cast<std::size_t>(last.value())].claimed_cost;
      if (rival > payment) {
        payment = rival;
        setter_phone = last;
        setter_slot = record.slot;
      }
    }
  }
  const bool scarce_applied =
      scarce &&
      config_.scarce_payment == OnlineGreedyConfig::ScarcePayment::kCapAtValue &&
      scarce_cap > payment;
  if (scarce_applied) {
    payment = scarce_cap;
  }
  obs::log_event([&] {
    obs::Event event("payment_derivation");
    event.phone = winner.value();
    event.slot = static_cast<std::int32_t>(win_slot.value());
    event.with("rule", std::string("algorithm2.counterfactual_max"))
        .with("payment", payment)
        .with("own_bid", own_bid.claimed_cost)
        .with("window_end", static_cast<std::int64_t>(depart));
    if (setter_phone) {
      event.with("set_by_phone",
                 static_cast<std::int64_t>(setter_phone->value()))
          .with("set_in_slot",
                static_cast<std::int64_t>(setter_slot.value()));
    }
    event.with("scarce", scarce);
    if (scarce) event.with("scarce_cap", scarce_cap);
    event.with("scarce_applied", scarce_applied);
    return event;
  });
  return payment;
}

Outcome OnlineGreedyMechanism::run(const model::Scenario& scenario,
                                   const model::BidProfile& bids) const {
  const obs::TraceSpan span("online_greedy.run");
  scenario.validate();

  Outcome outcome;
  GreedyRun greedy;
  {
    const obs::TraceSpan allocation_span("online_greedy.allocation");
    greedy = run_greedy_allocation(scenario, bids, config_);
  }
  outcome.allocation = std::move(greedy.allocation);
  outcome.payments.assign(scenario.phones.size(), Money{});

  {
    const obs::TraceSpan payment_span("online_greedy.payments");
    for (const GreedySlotRecord& record : greedy.slots) {
      for (const PhoneId winner : record.winners) {
        outcome.payments[static_cast<std::size_t>(winner.value())] =
            compute_payment(scenario, bids, winner, record.slot);
      }
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

}  // namespace mcs::auction
