#include "auction/online_greedy.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>

#include "auction/counterfactual.hpp"
#include "common/assert.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::auction {

GreedyRun run_greedy_allocation(const model::Scenario& scenario,
                                const model::BidProfile& bids,
                                const OnlineGreedyConfig& config,
                                std::optional<PhoneId> exclude,
                                Slot::rep_type last_slot,
                                GreedyCheckpoints* capture) {
  model::validate_bids(scenario, bids);
  MCS_EXPECTS(capture == nullptr || !exclude,
              "checkpoints describe the factual run: capturing a "
              "counterfactual (excluded) pass would poison every fork");
  const Slot::rep_type horizon =
      last_slot == 0 ? scenario.num_slots
                     : std::min(last_slot, scenario.num_slots);

  // Per-slot work counters, accumulated locally and published once at the
  // end of the run (one registry access instead of one per slot).
  obs::MetricsRegistry* const registry = obs::current_registry();
  static const std::vector<double> kPoolBuckets = {0,  1,   2,   5,   10,  20,
                                                   50, 100, 200, 500, 1000};
  obs::Histogram* const pool_hist =
      registry != nullptr
          ? &registry->histogram("auction.greedy.pool_size", &kPoolBuckets)
          : nullptr;
  std::int64_t pool_insertions = 0;
  std::int64_t tasks_assigned = 0;
  std::int64_t tasks_unserved = 0;

  // Arrival index: phones grouped by reported arrival slot. (Under
  // allocate_only_profitable, eligibility is checked per task at
  // allocation time, since the weighted-query extension gives tasks
  // individual values.)
  std::vector<std::vector<int>> arrivals(
      static_cast<std::size_t>(scenario.num_slots) + 1);
  for (int i = 0; i < scenario.phone_count(); ++i) {
    if (exclude && exclude->value() == i) continue;
    const model::Bid& bid = bids[static_cast<std::size_t>(i)];
    if (config.reserve_price && bid.claimed_cost > *config.reserve_price) {
      obs::log_event([&] {
        obs::Event event("bid_rejected");
        event.phone = i;
        event.slot = static_cast<std::int32_t>(bid.window.begin().value());
        event.with("reason", std::string("reserve"))
            .with("bid", bid.claimed_cost)
            .with("reserve", *config.reserve_price);
        return event;
      });
      continue;  // above the platform reserve: never admitted
    }
    obs::log_event([&] {
      obs::Event event("bid_admitted");
      event.phone = i;
      event.slot = static_cast<std::int32_t>(bid.window.begin().value());
      event.with("bid", bid.claimed_cost)
          .with("departs",
                static_cast<std::int64_t>(bid.window.end().value()));
      return event;
    });
    arrivals[static_cast<std::size_t>(bid.window.begin().value())].push_back(i);
  }
  // Departure index, mirroring the arrivals one: a bid with reported
  // window [a~, d~] leaves the pool at the start of slot d~ + 1. Erasing
  // only actual departures keeps the per-slot sweep O(departures) instead
  // of O(pool).
  std::vector<std::vector<int>> departures(
      static_cast<std::size_t>(scenario.num_slots) + 2);
  for (const std::vector<int>& slot_arrivals : arrivals) {
    for (const int phone : slot_arrivals) {
      const Slot::rep_type departs_after =
          bids[static_cast<std::size_t>(phone)].window.end().value() + 1;
      departures[static_cast<std::size_t>(departs_after)].push_back(phone);
    }
  }
  if (capture != nullptr) {
    capture->arrivals = arrivals;
    capture->slots.assign(static_cast<std::size_t>(horizon) + 1, {});
  }

  const std::vector<int> tasks_per_slot = scenario.tasks_per_slot();
  // Tasks of each slot in id order (dense ids sorted by slot make this a
  // simple running cursor).
  std::size_t next_task = 0;

  GreedyRun run;
  run.allocation = Allocation(scenario.task_count(), scenario.phone_count());
  run.slots.reserve(static_cast<std::size_t>(horizon));

  std::set<PoolBid> pool;  // active unallocated bids

  for (Slot::rep_type t = 1; t <= horizon; ++t) {
    if (capture != nullptr) {
      // Snapshot the slot-start state (before this slot's arrivals and
      // departures): the fork point for counterfactuals of phones whose
      // reported arrival is t.
      GreedyCheckpoints::SlotStart& checkpoint =
          capture->slots[static_cast<std::size_t>(t)];
      checkpoint.pool.assign(pool.begin(), pool.end());
      checkpoint.next_task = next_task;
    }
    // Add newly arriving bids (Algorithm 1 line 3, first half).
    for (const int phone : arrivals[static_cast<std::size_t>(t)]) {
      pool.insert(PoolBid{
          bids[static_cast<std::size_t>(phone)].claimed_cost.micros(), phone});
      ++pool_insertions;
    }
    // Drop departed bids (line 3, second half). Lazy would suffice for
    // allocation, but the recorded pool must match Fig. 4's "dynamic pool".
    // A departed bid may already be allocated (absent): erase is a no-op.
    for (const int phone : departures[static_cast<std::size_t>(t)]) {
      pool.erase(PoolBid{
          bids[static_cast<std::size_t>(phone)].claimed_cost.micros(), phone});
    }

    GreedySlotRecord record;
    record.slot = Slot{t};
    record.pool.reserve(pool.size());
    for (const PoolBid& entry : pool) {
      record.pool.push_back(PhoneId{entry.phone});
    }
    // The candidate pool at the start of the slot, cheapest first --
    // Fig. 4's "dynamic pool" as a replayable record.
    obs::log_event([&] {
      obs::Event event("slot_pool");
      event.slot = static_cast<std::int32_t>(t);
      std::vector<std::int64_t> ids;
      std::vector<std::int64_t> costs_micros;
      ids.reserve(pool.size());
      costs_micros.reserve(pool.size());
      for (const PoolBid& entry : pool) {
        ids.push_back(entry.phone);
        costs_micros.push_back(entry.cost_micros);
      }
      event.with("pool", std::move(ids))
          .with("pool_costs_micros", std::move(costs_micros));
      return event;
    });

    // Allocate this slot's tasks to the cheapest pool members (lines 5-8).
    // With the weighted-query extension, serve high-value tasks first so a
    // dry pool starves only the least valuable ones (with uniform nu this
    // is plain id order).
    const int r_t = tasks_per_slot[static_cast<std::size_t>(t)];
    std::vector<TaskId> slot_tasks;
    slot_tasks.reserve(static_cast<std::size_t>(r_t));
    for (int k = 0; k < r_t; ++k) {
      const TaskId task{static_cast<int>(next_task + static_cast<std::size_t>(k))};
      MCS_ASSERT(scenario.tasks[static_cast<std::size_t>(task.value())].slot ==
                     Slot{t},
                 "task cursor out of sync with slot");
      slot_tasks.push_back(task);
    }
    next_task += static_cast<std::size_t>(r_t);
    std::stable_sort(slot_tasks.begin(), slot_tasks.end(),
                     [&](TaskId a, TaskId b) {
                       return scenario.value_of(a) > scenario.value_of(b);
                     });

    for (const TaskId task : slot_tasks) {
      if (pool.empty()) {
        obs::log_event([&] {
          obs::Event event("task_unserved");
          event.slot = static_cast<std::int32_t>(t);
          event.task = task.value();
          event.with("reason", std::string("pool_empty"));
          return event;
        });
        record.unserved.push_back(task);
        continue;
      }
      const PoolBid chosen = *pool.begin();
      if (config.allocate_only_profitable &&
          Money::from_micros(chosen.cost_micros) > scenario.value_of(task)) {
        // The cheapest remaining bid already exceeds this task's value, so
        // no profitable assignment exists; the phone stays in the pool.
        obs::log_event([&] {
          obs::Event event("task_unserved");
          event.slot = static_cast<std::int32_t>(t);
          event.task = task.value();
          event.with("reason", std::string("unprofitable"))
              .with("cheapest_bid", Money::from_micros(chosen.cost_micros))
              .with("cheapest_phone",
                    static_cast<std::int64_t>(chosen.phone))
              .with("task_value", scenario.value_of(task));
          return event;
        });
        record.unserved.push_back(task);
        continue;
      }
      pool.erase(pool.begin());
      obs::log_event([&] {
        obs::Event event("task_assigned");
        event.slot = static_cast<std::int32_t>(t);
        event.task = task.value();
        event.phone = chosen.phone;
        event.with("bid", Money::from_micros(chosen.cost_micros))
            .with("task_value", scenario.value_of(task));
        // The runner-up bid (next-cheapest pool member) documents how
        // close the decision was; absent when the pool emptied.
        if (!pool.empty()) {
          event.with("runner_up_phone",
                     static_cast<std::int64_t>(pool.begin()->phone))
              .with("runner_up_bid",
                    Money::from_micros(pool.begin()->cost_micros));
        }
        return event;
      });
      run.allocation.assign(task, PhoneId{chosen.phone});
      record.winners.push_back(PhoneId{chosen.phone});
    }
    record.unallocated_tasks = static_cast<int>(record.unserved.size());
    tasks_assigned += static_cast<std::int64_t>(record.winners.size());
    tasks_unserved += static_cast<std::int64_t>(record.unserved.size());
    if (pool_hist != nullptr) {
      pool_hist->observe(static_cast<double>(pool.size()));
    }

    run.slots.push_back(std::move(record));
  }

  if (registry != nullptr) {
    registry->counter("auction.greedy.allocation_runs").add(1);
    registry->counter("auction.greedy.slots_processed")
        .add(static_cast<std::int64_t>(horizon));
    registry->counter("auction.greedy.pool_insertions").add(pool_insertions);
    registry->counter("auction.greedy.tasks_assigned").add(tasks_assigned);
    registry->counter("auction.greedy.tasks_unserved").add(tasks_unserved);
  }
  return run;
}

namespace {

/// Everything the payment_derivation event needs, computed without
/// touching the event log -- so derivations can run on worker threads
/// while the events still come out on the caller's thread in winner
/// order, making the trail identical at every thread count.
struct PaymentBreakdown {
  Money payment;
  bool scarce{false};
  Money scarce_cap;
  bool scarce_applied{false};
  /// Which counterfactual slot winner set the final payment (the argmax
  /// of Algorithm 2 line 6) -- the derivation reference of the record.
  std::optional<PhoneId> setter_phone;
  Slot setter_slot{0};
};

void apply_scarcity_policy(PaymentBreakdown& breakdown,
                           const OnlineGreedyConfig& config) {
  breakdown.scarce_applied =
      breakdown.scarce &&
      config.scarce_payment == OnlineGreedyConfig::ScarcePayment::kCapAtValue &&
      breakdown.scarce_cap > breakdown.payment;
  if (breakdown.scarce_applied) {
    breakdown.payment = breakdown.scarce_cap;
  }
}

/// Algorithm 2 by full re-run: the counterfactual without B_i replays
/// from slot 1 up to the winner's reported departure. The straightforward
/// reading of the paper, kept as the shared-prefix engine's equivalence
/// oracle (OnlineGreedyConfig::PaymentEngine::kFullReplay).
PaymentBreakdown derive_payment_full_replay(const model::Scenario& scenario,
                                            const model::BidProfile& bids,
                                            const OnlineGreedyConfig& config,
                                            PhoneId winner, Slot win_slot) {
  const model::Bid& own_bid = bids[static_cast<std::size_t>(winner.value())];
  const Slot::rep_type depart = own_bid.window.end().value();

  // Each counterfactual evaluation is one probe of i's critical value --
  // the over-time analogue of a bisection probe (docs/observability.md).
  // Its inner allocation decisions are search bookkeeping, not decisions
  // of the recorded run, so event recording is suppressed for its scope.
  obs::count("auction.critical_value.probes");
  GreedyRun without;
  {
    const obs::ScopedEventLog suppress_counterfactual(nullptr);
    without = run_greedy_allocation(scenario, bids, config, winner, depart);
  }

  PaymentBreakdown breakdown;
  breakdown.payment = own_bid.claimed_cost;  // Algorithm 2 line 1: p_i <- b_i
  for (const GreedySlotRecord& record : without.slots) {
    if (record.slot < win_slot) continue;  // only slots in [t'_i, d~_i]
    for (const TaskId task : record.unserved) {
      // Without i this task goes unserved. i's winning threshold for it is
      // the reserve price (if set: bids above it never enter), else the
      // task's value under profitable-only, else unbounded -- in which
      // case the task's value serves as the documented cap.
      breakdown.scarce = true;
      Money cap = scenario.value_of(task);
      if (config.reserve_price) {
        cap = config.allocate_only_profitable
                  ? std::min(*config.reserve_price, cap)
                  : *config.reserve_price;
      }
      breakdown.scarce_cap = std::max(breakdown.scarce_cap, cap);
    }
    if (!record.winners.empty()) {
      // Line 6: the r_t-th (highest-cost) winner of the slot.
      const PhoneId last = record.winners.back();
      const Money rival =
          bids[static_cast<std::size_t>(last.value())].claimed_cost;
      if (rival > breakdown.payment) {
        breakdown.payment = rival;
        breakdown.setter_phone = last;
        breakdown.setter_slot = record.slot;
      }
    }
  }
  apply_scarcity_policy(breakdown, config);
  return breakdown;
}

/// Algorithm 2 on the shared-prefix engine: the counterfactual forks from
/// the factual checkpoint at the winner's reported arrival, replaying only
/// [t'_i, d~_i]. Money-equal to derive_payment_full_replay by the prefix
/// invariant (proved across engines by the payment equivalence suite).
PaymentBreakdown derive_payment_shared_prefix(const CounterfactualEngine& engine,
                                              PhoneId winner, Slot win_slot) {
  const model::Bid& own_bid =
      engine.bids()[static_cast<std::size_t>(winner.value())];
  const Slot::rep_type depart = own_bid.window.end().value();
  obs::count("auction.critical_value.probes");

  PaymentBreakdown breakdown;
  breakdown.payment = own_bid.claimed_cost;  // Algorithm 2 line 1: p_i <- b_i
  for (const CounterfactualEngine::ReplaySlot& slot :
       engine.replay_without(winner, win_slot.value(), depart)) {
    if (slot.scarce_cap) {
      breakdown.scarce = true;
      breakdown.scarce_cap = std::max(breakdown.scarce_cap, *slot.scarce_cap);
    }
    if (slot.dearest_cost && *slot.dearest_cost > breakdown.payment) {
      breakdown.payment = *slot.dearest_cost;
      breakdown.setter_phone = slot.dearest_phone;
      breakdown.setter_slot = slot.slot;
    }
  }
  apply_scarcity_policy(breakdown, engine.config());
  return breakdown;
}

void log_payment_derivation(const PaymentBreakdown& breakdown,
                            const model::Bid& own_bid, PhoneId winner,
                            Slot win_slot) {
  obs::log_event([&] {
    obs::Event event("payment_derivation");
    event.phone = winner.value();
    event.slot = static_cast<std::int32_t>(win_slot.value());
    event.with("rule", std::string("algorithm2.counterfactual_max"))
        .with("payment", breakdown.payment)
        .with("own_bid", own_bid.claimed_cost)
        .with("window_end",
              static_cast<std::int64_t>(own_bid.window.end().value()));
    if (breakdown.setter_phone) {
      event.with("set_by_phone",
                 static_cast<std::int64_t>(breakdown.setter_phone->value()))
          .with("set_in_slot",
                static_cast<std::int64_t>(breakdown.setter_slot.value()));
    }
    event.with("scarce", breakdown.scarce);
    if (breakdown.scarce) event.with("scarce_cap", breakdown.scarce_cap);
    event.with("scarce_applied", breakdown.scarce_applied);
    return event;
  });
}

}  // namespace

Money OnlineGreedyMechanism::compute_payment(const model::Scenario& scenario,
                                             const model::BidProfile& bids,
                                             PhoneId winner,
                                             Slot win_slot) const {
  PaymentBreakdown breakdown;
  if (config_.payment_engine ==
      OnlineGreedyConfig::PaymentEngine::kSharedPrefix) {
    // A single-winner query amortizes nothing, but still pays for at most
    // one factual pass plus one suffix replay; run() shares one engine
    // across all winners.
    const CounterfactualEngine engine(scenario, bids, config_);
    breakdown = derive_payment_shared_prefix(engine, winner, win_slot);
  } else {
    breakdown =
        derive_payment_full_replay(scenario, bids, config_, winner, win_slot);
  }
  log_payment_derivation(
      breakdown, bids[static_cast<std::size_t>(winner.value())], winner,
      win_slot);
  return breakdown.payment;
}

Outcome OnlineGreedyMechanism::run(const model::Scenario& scenario,
                                   const model::BidProfile& bids) const {
  const obs::TraceSpan span("online_greedy.run");
  scenario.validate();
  const bool shared_prefix =
      config_.payment_engine == OnlineGreedyConfig::PaymentEngine::kSharedPrefix;

  Outcome outcome;
  GreedyRun greedy;
  GreedyCheckpoints checkpoints;
  {
    const obs::TraceSpan allocation_span("online_greedy.allocation");
    greedy = run_greedy_allocation(scenario, bids, config_, std::nullopt, 0,
                                   shared_prefix ? &checkpoints : nullptr);
  }
  outcome.allocation = std::move(greedy.allocation);
  outcome.payments.assign(scenario.phones.size(), Money{});

  {
    const obs::TraceSpan payment_span("online_greedy.payments");
    struct WinRecord {
      PhoneId phone{-1};
      Slot slot{0};
    };
    std::vector<WinRecord> winners;
    for (const GreedySlotRecord& record : greedy.slots) {
      for (const PhoneId winner : record.winners) {
        winners.push_back(WinRecord{winner, record.slot});
      }
    }

    std::optional<CounterfactualEngine> engine;
    if (shared_prefix) {
      engine.emplace(scenario, bids, config_, std::move(checkpoints));
    }
    const auto derive = [&](const WinRecord& win) {
      return shared_prefix
                 ? derive_payment_shared_prefix(*engine, win.phone, win.slot)
                 : derive_payment_full_replay(scenario, bids, config_,
                                              win.phone, win.slot);
    };

    // Per-winner derivations are independent and read-only: fan them out
    // over payment_threads workers, strided like sim::simulate_parallel.
    // Each worker records into its own registry (new threads inherit no
    // thread-local state, so worker event logs are off by construction);
    // the partials merge in worker order after the join, and counter
    // merges are sums, so the totals equal a serial run exactly.
    std::vector<PaymentBreakdown> breakdowns(winners.size());
    std::size_t threads = config_.payment_threads > 0
                              ? static_cast<std::size_t>(config_.payment_threads)
                              : std::max<std::size_t>(
                                    std::thread::hardware_concurrency(), 1);
    threads = std::min(threads, winners.size());
    if (threads <= 1) {
      for (std::size_t k = 0; k < winners.size(); ++k) {
        breakdowns[k] = derive(winners[k]);
      }
    } else {
      obs::MetricsRegistry* const parent_registry = obs::current_registry();
      std::vector<obs::MetricsRegistry> worker_metrics(threads);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (std::size_t w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
          std::optional<obs::ScopedRegistry> telemetry;
          if (parent_registry != nullptr) {
            telemetry.emplace(&worker_metrics[w]);
          }
          for (std::size_t k = w; k < winners.size(); k += threads) {
            breakdowns[k] = derive(winners[k]);
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      if (parent_registry != nullptr) {
        for (const obs::MetricsRegistry& partial : worker_metrics) {
          parent_registry->merge(partial);
        }
      }
    }

    // Events and payments written back on this thread in winner order:
    // the recorded trail is identical at every thread count.
    for (std::size_t k = 0; k < winners.size(); ++k) {
      const WinRecord& win = winners[k];
      log_payment_derivation(
          breakdowns[k], bids[static_cast<std::size_t>(win.phone.value())],
          win.phone, win.slot);
      outcome.payments[static_cast<std::size_t>(win.phone.value())] =
          breakdowns[k].payment;
    }
  }

  outcome.validate(scenario, bids);
  return outcome;
}

}  // namespace mcs::auction
