// The online near-optimal truthful mechanism (paper Section V).
//
// Allocation (Algorithm 1): at the start of each slot t, the platform adds
// newly arrived bids to the dynamic pool, drops departed ones, and assigns
// the slot's r_t tasks to the r_t active unallocated bids with the lowest
// claimed costs (ties broken by phone id -- a fixed deterministic order is
// required for the monotonicity of Definition 10). This greedy rule is
// 1/2-competitive in social welfare against the offline optimum (Theorem 6).
//
// Payment (Algorithm 2): a winner i that won in slot t'_i is paid the
// *critical value* -- the highest claimed cost among per-slot winners in
// slots [t'_i, d~_i] of a counterfactual run without B_i (and never below
// b_i). Payment at the critical value plus monotone allocation yields
// truthfulness (Theorem 4) and individual rationality (Theorem 5).
//
// Two paper-silent corner cases are governed by OnlineGreedyConfig and
// documented in DESIGN.md Section 5:
//  * scarcity: if, without i, some task in [t'_i, d~_i] would go unserved,
//    i's critical value is unbounded; the payment then includes the task
//    value nu (kCapAtValue) or falls back to b_i (kOwnBid).
//  * profitability: Algorithm 1 as printed allocates even when b_i > nu;
//    allocate_only_profitable = true skips such bids.
#pragma once

#include <optional>
#include <vector>

#include "auction/mechanism.hpp"

namespace mcs::auction {

struct OnlineGreedyConfig {
  /// Skip bids whose claimed cost exceeds the task value (off = faithful to
  /// the paper's Algorithm 1, which allocates unconditionally).
  bool allocate_only_profitable = false;

  /// How Algorithm 2 evaluates its counterfactual runs.
  enum class PaymentEngine {
    /// Fork each counterfactual from the factual run's per-slot
    /// checkpoints at the winner's reported arrival (the runs are
    /// byte-identical before it). Same payments, far less work.
    kSharedPrefix,
    /// Re-run Algorithm 1 from slot 1 for every counterfactual -- the
    /// straightforward reading of the paper, kept as the equivalence
    /// oracle for the shared-prefix engine.
    kFullReplay,
  };
  PaymentEngine payment_engine = PaymentEngine::kSharedPrefix;

  /// Worker threads for the per-winner payment fan-out in run(). The
  /// derivations are independent and read-only; results are written back
  /// in winner order and per-worker metrics merge deterministically, so
  /// any value yields identical payments, events, and counters.
  /// 1 = serial (default), 0 = hardware concurrency.
  int payment_threads = 1;

  /// Platform reserve price: bids claiming more than this can never win.
  /// A set reserve bounds every critical value by the reserve, so the
  /// mechanism stays *exactly* truthful even under supply scarcity (a
  /// scarce winner is paid the reserve -- its true threshold). Unset =
  /// paper-faithful (no reserve). Composes with allocate_only_profitable
  /// (per-task eligibility then requires b <= min(reserve, task value)).
  std::optional<Money> reserve_price;

  /// Payment contribution for slots where, without the winner, a task would
  /// have gone unallocated (critical value unbounded).
  enum class ScarcePayment {
    kCapAtValue,  ///< pay at least nu (keeps IR whenever c_i <= nu)
    kOwnBid,      ///< pay only the claimed cost for such slots
  };
  ScarcePayment scarce_payment = ScarcePayment::kCapAtValue;
};

/// Per-slot record of one greedy run (introspection for tests, examples,
/// and the Fig. 4 walkthrough bench).
struct GreedySlotRecord {
  Slot slot{0};
  /// Active unallocated bids at the start of the slot, sorted by
  /// (claimed cost, id) -- the "dynamic pool" of Fig. 4.
  std::vector<PhoneId> pool;
  /// Winners this slot in allocation order (cheapest first).
  std::vector<PhoneId> winners;
  /// Tasks of this slot left unserved (pool ran dry, or -- under
  /// allocate_only_profitable -- no remaining bid at or below the task's
  /// value). With weighted tasks the highest-value tasks are served first,
  /// so the unserved ones are the least valuable of the slot.
  std::vector<TaskId> unserved;
  /// Convenience: unserved.size().
  int unallocated_tasks{0};
};

/// Result of running Algorithm 1 alone (no payments).
struct GreedyRun {
  Allocation allocation;
  std::vector<GreedySlotRecord> slots;  ///< index t-1 describes slot t
};

struct GreedyCheckpoints;  // auction/counterfactual.hpp

/// Runs Algorithm 1 on `bids`, optionally pretending phone `exclude` never
/// bid (the counterfactual run of Algorithm 2), stopping after `last_slot`
/// (0 = the full round). Exposed publicly because the payment scheme, the
/// second-price baseline, and several tests all build on it.
///
/// When `capture` is non-null the pass additionally snapshots its
/// per-slot-start state (pool + task cursor) into it, for a
/// CounterfactualEngine to fork from; capturing is only meaningful on
/// factual runs (no `exclude`).
[[nodiscard]] GreedyRun run_greedy_allocation(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const OnlineGreedyConfig& config = {},
    std::optional<PhoneId> exclude = std::nullopt,
    Slot::rep_type last_slot = 0, GreedyCheckpoints* capture = nullptr);

class OnlineGreedyMechanism final : public Mechanism {
 public:
  OnlineGreedyMechanism() = default;
  explicit OnlineGreedyMechanism(OnlineGreedyConfig config) : config_(config) {}

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override { return "online-greedy"; }

  [[nodiscard]] const OnlineGreedyConfig& config() const { return config_; }

  /// Algorithm 2 for a single winner: the payment for `winner`, which won
  /// in slot `win_slot` under `bids`. Exposed for the critical-value
  /// cross-check tests.
  [[nodiscard]] Money compute_payment(const model::Scenario& scenario,
                                      const model::BidProfile& bids,
                                      PhoneId winner, Slot win_slot) const;

 private:
  OnlineGreedyConfig config_;
};

}  // namespace mcs::auction
