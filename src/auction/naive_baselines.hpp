// Naive allocation baselines.
//
// Not from the paper's mechanism family -- these calibrate the evaluation:
// the greedy online rule should beat random and FIFO allocation in welfare,
// and the gap quantifies how much the cost-aware pool ordering buys. Both
// pay first-price (the claimed cost), which is trivially individually
// rational on truthful bids but not truthful; they are used for welfare
// comparisons only.
#pragma once

#include <cstdint>

#include "auction/mechanism.hpp"

namespace mcs::auction {

/// Allocates each slot's tasks to uniformly random active unallocated bids.
/// Deterministic given the seed.
class RandomAllocationMechanism final : public Mechanism {
 public:
  explicit RandomAllocationMechanism(std::uint64_t seed = 1) : seed_(seed) {}

  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override { return "random-allocation"; }

 private:
  std::uint64_t seed_;
};

/// Allocates each slot's tasks to the longest-waiting active unallocated
/// bids (earliest reported arrival, ties by id) regardless of cost.
class FifoAllocationMechanism final : public Mechanism {
 public:
  [[nodiscard]] Outcome run(const model::Scenario& scenario,
                            const model::BidProfile& bids) const override;

  [[nodiscard]] std::string name() const override { return "fifo-allocation"; }
};

}  // namespace mcs::auction
