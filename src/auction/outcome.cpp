#include "auction/outcome.hpp"

#include "common/assert.hpp"

namespace mcs::auction {

Allocation::Allocation(int task_count, int phone_count) {
  MCS_EXPECTS(task_count >= 0 && phone_count >= 0,
              "allocation shape must be nonnegative");
  task_to_phone_.assign(static_cast<std::size_t>(task_count), std::nullopt);
  phone_to_task_.assign(static_cast<std::size_t>(phone_count), std::nullopt);
  task_service_slot_.assign(static_cast<std::size_t>(task_count),
                            std::nullopt);
}

void Allocation::assign(TaskId task, PhoneId phone) {
  MCS_EXPECTS(task.value() >= 0 && task.value() < task_count(),
              "task id out of range");
  MCS_EXPECTS(phone.value() >= 0 && phone.value() < phone_count(),
              "phone id out of range");
  auto& t_slot = task_to_phone_[static_cast<std::size_t>(task.value())];
  auto& p_slot = phone_to_task_[static_cast<std::size_t>(phone.value())];
  MCS_EXPECTS(!t_slot.has_value(), "task already allocated");
  MCS_EXPECTS(!p_slot.has_value(), "phone already has a task");
  t_slot = phone;
  p_slot = task;
}

void Allocation::assign(TaskId task, PhoneId phone, Slot service_slot) {
  assign(task, phone);
  task_service_slot_[static_cast<std::size_t>(task.value())] = service_slot;
}

Slot Allocation::service_slot_for(TaskId task,
                                  const model::Scenario& scenario) const {
  MCS_EXPECTS(phone_for(task).has_value(), "task is not allocated");
  if (const auto& slot =
          task_service_slot_[static_cast<std::size_t>(task.value())]) {
    return *slot;
  }
  return scenario.tasks[static_cast<std::size_t>(task.value())].slot;
}

std::optional<PhoneId> Allocation::phone_for(TaskId task) const {
  MCS_EXPECTS(task.value() >= 0 && task.value() < task_count(),
              "task id out of range");
  return task_to_phone_[static_cast<std::size_t>(task.value())];
}

std::optional<TaskId> Allocation::task_for(PhoneId phone) const {
  MCS_EXPECTS(phone.value() >= 0 && phone.value() < phone_count(),
              "phone id out of range");
  return phone_to_task_[static_cast<std::size_t>(phone.value())];
}

bool Allocation::is_winner(PhoneId phone) const {
  return task_for(phone).has_value();
}

int Allocation::allocated_count() const {
  int count = 0;
  for (const auto& phone : task_to_phone_) {
    if (phone) ++count;
  }
  return count;
}

std::vector<PhoneId> Allocation::winners() const {
  std::vector<PhoneId> result;
  for (int i = 0; i < phone_count(); ++i) {
    if (phone_to_task_[static_cast<std::size_t>(i)]) {
      result.push_back(PhoneId{i});
    }
  }
  return result;
}

void Allocation::validate(const model::Scenario& scenario,
                          const model::BidProfile& bids) const {
  MCS_ASSERT(task_count() == scenario.task_count(),
             "allocation task count mismatch");
  MCS_ASSERT(phone_count() == scenario.phone_count(),
             "allocation phone count mismatch");
  MCS_ASSERT(bids.size() == scenario.phones.size(), "bid profile mismatch");
  for (int t = 0; t < task_count(); ++t) {
    const auto& phone = task_to_phone_[static_cast<std::size_t>(t)];
    if (!phone) continue;
    // Cross-link consistency.
    const auto& back = phone_to_task_[static_cast<std::size_t>(phone->value())];
    MCS_ASSERT(back && back->value() == t, "allocation cross-links broken");
    // Constraint (6): service within the reported active window. The
    // service slot is the arrival slot unless the patience extension
    // recorded a later one -- never an earlier one.
    const Slot arrival = scenario.tasks[static_cast<std::size_t>(t)].slot;
    const Slot service = service_slot_for(TaskId{t}, scenario);
    MCS_ASSERT(arrival <= service, "task served before it arrived");
    MCS_ASSERT(service.value() <= scenario.num_slots,
               "task served after the round");
    const model::Bid& bid = bids[static_cast<std::size_t>(phone->value())];
    MCS_ASSERT(bid.window.contains(service),
               "task served outside the phone's reported window");
  }
}

Money Outcome::social_welfare(const model::Scenario& scenario) const {
  Money welfare;
  for (int t = 0; t < allocation.task_count(); ++t) {
    if (const auto phone = allocation.phone_for(TaskId{t})) {
      welfare += scenario.value_of(TaskId{t}) - scenario.phone(*phone).cost;
    }
  }
  return welfare;
}

Money Outcome::claimed_welfare(const model::Scenario& scenario,
                               const model::BidProfile& bids) const {
  Money welfare;
  for (int t = 0; t < allocation.task_count(); ++t) {
    if (const auto phone = allocation.phone_for(TaskId{t})) {
      welfare += scenario.value_of(TaskId{t}) -
                 bids[static_cast<std::size_t>(phone->value())].claimed_cost;
    }
  }
  return welfare;
}

Money Outcome::total_payment() const {
  Money total;
  for (const Money p : payments) total += p;
  return total;
}

Money Outcome::total_true_cost(const model::Scenario& scenario) const {
  Money total;
  for (const PhoneId winner : allocation.winners()) {
    total += scenario.phone(winner).cost;
  }
  return total;
}

Money Outcome::utility(const model::Scenario& scenario, PhoneId phone) const {
  MCS_EXPECTS(phone.value() >= 0 &&
                  static_cast<std::size_t>(phone.value()) < payments.size(),
              "phone id out of range");
  const Money payment = payments[static_cast<std::size_t>(phone.value())];
  if (allocation.is_winner(phone)) {
    return payment - scenario.phone(phone).cost;
  }
  return payment;
}

void Outcome::validate(const model::Scenario& scenario,
                       const model::BidProfile& bids) const {
  allocation.validate(scenario, bids);
  MCS_ASSERT(payments.size() == scenario.phones.size(),
             "payment vector size mismatch");
  for (int i = 0; i < scenario.phone_count(); ++i) {
    if (!allocation.is_winner(PhoneId{i})) {
      MCS_ASSERT(payments[static_cast<std::size_t>(i)].is_zero(),
                 "loser received a nonzero payment");
    }
  }
}

}  // namespace mcs::auction
