// Live economic telemetry and the online invariant sentinel -- the
// mechanism-health plane of the serving engine.
//
// serve/telemetry.hpp watches the engine as a *system* (throughput,
// latency, queues); this file watches it as a *mechanism*. At every
// round_close the shard worker hands the closed round's claimed-cost
// reconstruction (RoundMachine capture mode) to observe_round, which
//
//  * computes the round's economics through the very same
//    analysis::compute_metrics the offline audits use (welfare, payment,
//    overpayment ratio sigma, coverage, Jain payment fairness),
//  * prices the round under reference mechanisms -- the per-slot
//    second-price baseline every round, offline VCG for small rounds --
//    so overpayment is visible against a yardstick, and
//  * runs the sentinel: cheap exact invariants every round
//    (analysis::check_round_invariants -- winner paid >= claimed cost,
//    losers paid zero, payment-total accounting), plus, for a seeded
//    1-in-N sample of rounds, deep probes through the shared-prefix
//    CounterfactualEngine (auction::audit_winner_payment -- the winner
//    still wins at its claim and its payment equals the critical value,
//    Theorem 4's characterization).
//
// Plane separation contract: every reference run and probe executes under
// obs::ScopedRegistry(nullptr) + obs::ScopedEventLog(nullptr), so the
// deterministic counter plane is untouched and econ-on vs econ-off runs
// stay bit-identical on clean traffic. The single deliberate exception is
// the `econ.violations` registry counter, bumped only when an invariant
// actually breaks -- deterministically so, because the probe sampler is
// seeded by round id, never by time. Violations additionally emit
// structured "econ_violation" records into a caller-supplied
// obs::EventLog and flip the plane's health to degraded-economics
// (sticky: a mispriced mechanism is a bug, not load).
//
// Snapshots aggregate per-shard atomics through obs::EconWindowAggregator
// into one "mcs.serve_econ.v1" JSONL line (write_econ_snapshot) and
// Prometheus gauges (render_econ_prometheus), published by the same
// StatsPublisher cadence as the systems plane. Time comes from an
// injectable clock, so FakeClock tests golden the stream byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "auction/online_greedy.hpp"
#include "obs/econ_metrics.hpp"
#include "obs/event_log.hpp"
#include "obs/latency_sketch.hpp"
#include "obs/wallclock.hpp"
#include "serve/round_machine.hpp"

namespace mcs::serve {

struct EconTelemetryConfig {
  /// Time source; nullptr = the process steady clock.
  obs::MonotonicClock* clock = nullptr;
  /// Rolling econ windows retained per shard.
  std::size_t window_capacity = 64;

  /// Price every round under the per-slot second-price baseline (cheap:
  /// one greedy re-run, no counterfactuals).
  bool second_price_reference = true;
  /// Offline VCG reference, gated to small rounds (O((n+gamma)^3) style
  /// matching); 0 disables. A round qualifies when phones <= vcg_max_phones
  /// AND tasks <= vcg_max_tasks.
  int vcg_max_phones = 12;
  int vcg_max_tasks = 12;

  /// Deep-probe sampling: 1-in-N rounds get per-winner counterfactual
  /// probes; 0 disables deep probes (cheap invariants still run on every
  /// round). The sampler hashes (round id XOR probe_seed), so the sampled
  /// set is a pure function of the stream, never of wall time.
  std::int64_t probe_every = 16;
  std::uint64_t probe_seed = 0;

  /// Mechanism knobs the counterfactual probes replay under; must match
  /// the engine's ServeConfig::greedy for the payment == critical-value
  /// check to be meaningful.
  auction::OnlineGreedyConfig greedy;

  /// Destination for "econ_violation" records (non-owning; must be
  /// thread-safe and outlive the plane). nullptr = no event records.
  obs::EventLog* events = nullptr;
};

/// Whether a given round id is deep-probed under this sampling config
/// (exposed so tests and docs can predict the sampled set).
[[nodiscard]] bool econ_probe_sampled(std::int64_t round,
                                      std::int64_t probe_every,
                                      std::uint64_t probe_seed);

/// One shard's share of an econ snapshot window.
struct EconShardWindow {
  int shard{0};
  obs::EconWindowStats window;
};

/// One published econ snapshot: per-shard windows, their engine-wide
/// window aggregate, and the cumulative-since-attach totals. All times are
/// uptime-relative nanoseconds.
struct EconSnapshot {
  std::int64_t window{0};
  std::uint64_t at_ns{0};
  /// healthy, or degraded-economics once any violation was ever observed.
  obs::HealthState state{obs::HealthState::kHealthy};
  obs::EconWindowStats total;       ///< deltas summed across shards
  obs::EconCumulative cumulative;   ///< merged cumulative totals
  std::vector<EconShardWindow> shards;
};

class EconTelemetry {
 public:
  explicit EconTelemetry(EconTelemetryConfig config = {});
  EconTelemetry(const EconTelemetry&) = delete;
  EconTelemetry& operator=(const EconTelemetry&) = delete;

  /// Binds to one engine run; discards any previous run's data.
  void attach(int shards);

  [[nodiscard]] int shards() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] const EconTelemetryConfig& config() const { return config_; }

  /// Audits one closed round. Called by the shard worker after the round
  /// machine reported done and before it is erased; `machine` gives the
  /// captured reconstruction, `result` the materialized outcome. Never
  /// throws on malformed rounds -- they are counted as skipped.
  /// Registry-plane effect: exactly one "econ.violations" count per
  /// violation found, nothing else. Returns the number of violations this
  /// round tripped (0 for clean or skipped rounds) -- the trace plane's
  /// tail sampler retains every round with a non-zero verdict.
  std::int64_t observe_round(int shard, RoundMachine& machine,
                             const RoundOutcome& result);

  /// Rolls one econ window per shard and aggregates. Serialized
  /// internally against concurrent publishers.
  [[nodiscard]] EconSnapshot take_snapshot();

  /// Total sentinel violations observed since attach.
  [[nodiscard]] std::int64_t violations() const;

 private:
  /// Written by shard workers (observe_round), read by the snapshot
  /// thread. Money totals are exact micro counters.
  struct ShardSlot {
    std::atomic<std::int64_t> rounds{0};
    std::atomic<std::int64_t> rounds_skipped{0};
    std::atomic<std::int64_t> tasks{0};
    std::atomic<std::int64_t> tasks_allocated{0};
    std::atomic<std::int64_t> winners{0};
    std::atomic<std::int64_t> payment_micros{0};
    std::atomic<std::int64_t> claimed_cost_micros{0};
    std::atomic<std::int64_t> second_price_payment_micros{0};
    std::atomic<std::int64_t> vcg_payment_micros{0};
    std::atomic<std::int64_t> vcg_rounds{0};
    std::atomic<std::int64_t> probe_rounds{0};
    std::atomic<std::int64_t> probe_checks{0};
    std::atomic<std::int64_t> violations{0};
    obs::LatencySketch fairness;     ///< per-round Jain, micro-ratio units
    obs::LatencySketch overpayment;  ///< per-round sigma, micro-ratio units
  };

  [[nodiscard]] std::uint64_t now_ns();
  [[nodiscard]] obs::EconCumulative sample_shard(ShardSlot& slot,
                                                 std::uint64_t at_ns);
  void report_violation(int shard, std::int64_t round, std::string_view kind,
                        std::int32_t phone, Money observed, Money expected);

  EconTelemetryConfig config_;
  obs::MonotonicClock* clock_;
  std::uint64_t start_ns_{0};
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  std::mutex snapshot_mutex_;  ///< guards aggregators_ + next_window_
  std::vector<obs::EconWindowAggregator> aggregators_;
  std::int64_t next_window_{0};
};

/// One "mcs.serve_econ.v1" JSONL line (newline-terminated). Money travels
/// as exact decimal strings; ratio quantiles of an empty window render as
/// null.
void write_econ_snapshot(std::ostream& os, const EconSnapshot& snapshot);

/// Prometheus text rendering (gauges named serve.econ.* -> mcs_serve_econ_*).
void render_econ_prometheus(std::ostream& os, const EconSnapshot& snapshot);

}  // namespace mcs::serve
