// Loopback TCP front-end for the serving engine.
//
// The engine itself is transport-agnostic: it consumes ServeEvents from
// whatever calls submit(). This front-end puts a socket in front of that
// call so producers in other processes can feed rounds over the wire. One
// acceptor thread owns the listening socket; each accepted connection gets
// a reader thread that decodes its byte stream and hands every event to
// the server's sink (the engine's submit path, which is already
// thread-safe and applies the usual admission policy).
//
// Per-connection format autodetection: a connection that opens with the
// binary magic 'M' ('MCSB'...) is decoded as mcs.serve.b1 frames through a
// WireDecoder; anything else is treated as mcs.serve.v1 JSONL, split on
// newlines. Malformed input poisons only its own connection -- the
// connection is dropped and counted in stats().decode_errors; other
// connections and the engine keep running. That containment is what makes
// the socket path safe to expose to untrusted producers.
//
// Lifecycle: construct, start() (binds; an ephemeral port is readable via
// port()), stop() (idempotent; wakes the acceptor, shuts down every open
// connection, joins all threads). The destructor calls stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/event.hpp"
#include "serve/wire.hpp"

namespace mcs::serve {

struct SocketServerConfig {
  std::string host{"127.0.0.1"};  ///< bind address (loopback by default)
  int port{0};                    ///< 0 picks an ephemeral port
  int backlog{64};
};

struct SocketServerStats {
  std::int64_t connections{0};    ///< connections accepted so far
  std::int64_t events{0};         ///< events delivered to the sink
  std::int64_t decode_errors{0};  ///< connections dropped on malformed input
};

class SocketServer {
 public:
  using Sink = std::function<void(const ServeEvent&)>;

  /// `sink` is invoked from connection reader threads, potentially
  /// concurrently; it must be thread-safe (ServeEngine::submit is).
  SocketServer(SocketServerConfig config, Sink sink);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the acceptor thread. Throws IoError when
  /// the address cannot be bound.
  void start();

  /// The bound port (resolves an ephemeral request). Valid after start().
  [[nodiscard]] int port() const { return port_; }

  /// Graceful shutdown: accepts whatever connections are already pending
  /// in the kernel backlog, then waits for every connection to reach EOF
  /// naturally (producers that sent-and-closed lose nothing) and joins all
  /// threads. Blocks for as long as the slowest producer keeps its
  /// connection open.
  void drain();

  /// Forced shutdown: stops accepting and shuts down open connections
  /// (in-flight buffered bytes are dropped), joins all threads.
  /// Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] SocketServerStats stats() const;

 private:
  void accept_loop();
  void drain_backlog();
  bool accept_one(bool blocking);
  void connection_loop(int fd);
  void join_all();
  void close_fds();

  SocketServerConfig config_;
  Sink sink_;
  int listen_fd_{-1};
  int wake_pipe_[2]{-1, -1};  ///< self-pipe: stop() wakes the acceptor poll
  int port_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool started_{false};

  mutable std::mutex mutex_;  ///< guards conn_fds_, threads_, rare counters
  std::vector<int> conn_fds_;
  std::vector<std::thread> threads_;
  std::thread acceptor_;
  std::int64_t connections_{0};
  std::atomic<std::int64_t> events_{0};  ///< hot: one per delivered event
  std::int64_t decode_errors_{0};
};

/// Blocking client: connects to host:port and streams bytes. The serve CLI
/// uses it to push loadgen / replay traffic at a --listen'ing engine.
class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();

  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Connects (throws IoError on refusal / resolution failure).
  [[nodiscard]] static SocketClient connect(const std::string& host, int port);

  /// Sends the whole buffer (throws IoError on a broken connection).
  void send(std::string_view bytes);

  /// Half-closes the write side so the server sees EOF, then closes.
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

 private:
  int fd_{-1};
};

}  // namespace mcs::serve
