// Deterministic virtual clock of one streamed round.
//
// The serving engine never reads wall time: the stream itself carries time
// as slot_tick events, so replaying the same event file always yields the
// same interleaving of arrivals and slot closures -- the property the
// streaming/batch equivalence oracle rests on. VirtualClock validates that
// discipline: intra-slot events must name the current slot, and ticks must
// close slots 1..m in order. Violations throw InvalidArgumentError (the
// stream is untrusted input, not a programming error).
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mcs::serve {

class VirtualClock {
 public:
  /// A round of `horizon` slots; time starts inside slot 1.
  explicit VirtualClock(Slot::rep_type horizon) : horizon_(horizon) {
    if (horizon < 1) {
      throw InvalidArgumentError("virtual clock requires a horizon >= 1");
    }
  }

  /// Slot the round is currently inside (horizon + 1 once finished).
  [[nodiscard]] Slot now() const { return Slot{current_}; }
  [[nodiscard]] Slot::rep_type horizon() const { return horizon_; }

  /// True once every slot of the round has been ticked closed.
  [[nodiscard]] bool finished() const { return current_ > horizon_; }

  /// Validates that an intra-slot event (task arrival, bid) names the slot
  /// the clock is currently inside.
  void expect_now(Slot slot) const {
    if (finished()) {
      throw InvalidArgumentError("event after the round's last slot_tick");
    }
    if (slot != now()) {
      throw InvalidArgumentError(
          "event names slot " + std::to_string(slot.value()) +
          " but the virtual clock is inside slot " + std::to_string(current_));
    }
  }

  /// Closes `slot` (must be the current one) and advances.
  void tick(Slot slot) {
    expect_now(slot);
    ++current_;
  }

 private:
  Slot::rep_type horizon_;
  Slot::rep_type current_{1};
};

}  // namespace mcs::serve
