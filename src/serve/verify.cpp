#include "serve/verify.hpp"

#include <sstream>

namespace mcs::serve {

std::string diff_against_batch(const model::Scenario& scenario,
                               const model::BidProfile& bids,
                               const RoundOutcome& streamed,
                               const auction::OnlineGreedyConfig& config) {
  const auction::Outcome batch =
      auction::OnlineGreedyMechanism(config).run(scenario, bids);

  std::ostringstream diff;
  if (streamed.outcome.allocation.task_count() != scenario.task_count() ||
      streamed.outcome.allocation.phone_count() != scenario.phone_count()) {
    diff << "round " << streamed.round << ": shape mismatch (streamed "
         << streamed.outcome.allocation.task_count() << " tasks x "
         << streamed.outcome.allocation.phone_count() << " phones, batch "
         << scenario.task_count() << " x " << scenario.phone_count() << ")";
    return diff.str();
  }
  for (int t = 0; t < scenario.task_count(); ++t) {
    const auto streamed_phone =
        streamed.outcome.allocation.phone_for(TaskId{t});
    const auto batch_phone = batch.allocation.phone_for(TaskId{t});
    if (streamed_phone != batch_phone) {
      diff << "round " << streamed.round << ", task " << t
           << ": streamed phone "
           << (streamed_phone ? std::to_string(streamed_phone->value()) : "-")
           << " vs batch "
           << (batch_phone ? std::to_string(batch_phone->value()) : "-");
      return diff.str();
    }
  }
  if (streamed.outcome.payments != batch.payments) {
    for (std::size_t i = 0; i < batch.payments.size(); ++i) {
      if (streamed.outcome.payments[i] != batch.payments[i]) {
        diff << "round " << streamed.round << ", phone " << i
             << ": streamed payment " << streamed.outcome.payments[i]
             << " vs batch " << batch.payments[i];
        return diff.str();
      }
    }
  }
  return {};
}

VerifyReport verify_against_batch(const LoadGenConfig& config,
                                  const std::vector<RoundOutcome>& outcomes,
                                  const auction::OnlineGreedyConfig& greedy) {
  VerifyReport report;
  for (const RoundOutcome& streamed : outcomes) {
    const model::Scenario scenario =
        loadgen_scenario(config, streamed.round);
    const model::BidProfile bids = scenario.truthful_bids();
    ++report.rounds_checked;
    const std::string diff =
        diff_against_batch(scenario, bids, streamed, greedy);
    if (!diff.empty()) {
      ++report.rounds_diverged;
      if (report.first_diff.empty()) report.first_diff = diff;
    }
  }
  return report;
}

}  // namespace mcs::serve
