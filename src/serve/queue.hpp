// The shard event queue: a bounded MPSC ring with batched handoff.
//
// Two properties matter on the serve hot path and both are structural
// here rather than best-effort:
//
//   * No allocator traffic. The ring's slots are preallocated at
//     construction (ServeEvent is allocation-free by design: fixed-width
//     fields, Money as int64, no strings), so pushing and popping move
//     events through memory the queue already owns. The old deque-backed
//     queue hit the global allocator on every push block -- on a
//     multi-producer hot path that is both latency and contention.
//
//   * Batched, all-or-nothing handoff. Producers hand over k events under
//     one lock acquisition (and consumers take up to k under one), so the
//     per-event cost of the mutex amortizes away. A batch either fits
//     entirely or not at all: under try_push nothing is partially
//     enqueued, and under push_block the producer waits until the whole
//     batch fits. That makes depth reporting exact -- the returned
//     depth-after-push is the real instantaneous occupancy the batch
//     produced, and high_watermark() is the true maximum occupancy ever
//     reached (the serve.queue_high_watermark gauge is audited against
//     exactly this).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/event.hpp"

namespace mcs::serve {

/// One queued event plus its wall-clock enqueue stamp (0 when the live and
/// trace planes are off -- the clock is never read then). Batch pushes
/// share one stamp: the batch is handed over at a single instant.
struct QueuedEvent {
  ServeEvent event;
  std::uint64_t enqueue_ns{0};
};

/// One popped event with the queue state the consumer observed:
/// depth_left counts the items still pending behind this one (ring
/// occupancy after the batch pop, plus the batch's own not-yet-consumed
/// tail), preserving the exact per-event depth the unbatched pop reported.
struct PoppedEvent {
  ServeEvent event;
  std::uint64_t enqueue_ns{0};
  std::int64_t depth_left{0};
};

class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  /// Blocks until all `count` events fit, then enqueues them atomically.
  /// Returns the occupancy after the push, or -1 when the ring was closed
  /// (nothing enqueued). Requires count <= capacity() (a larger batch
  /// could never fit and would deadlock); throws InvalidArgumentError.
  std::int64_t push_block(const ServeEvent* events, std::size_t count,
                          std::uint64_t enqueue_ns);

  /// All-or-nothing fast-fail: -1 when closed or the whole batch does not
  /// fit (nothing enqueued), else the occupancy after the push.
  std::int64_t try_push(const ServeEvent* events, std::size_t count,
                        std::uint64_t enqueue_ns);

  /// Blocks for at least one event, then moves up to `max` into `out`
  /// (appended; caller clears). Returns the number taken; 0 means closed
  /// and fully drained.
  std::size_t pop_batch(std::vector<PoppedEvent>& out, std::size_t max);

  /// Wakes every waiter; further pushes fail, pops drain the remainder.
  void close();

  /// Highest occupancy ever reached (exact; see header comment).
  [[nodiscard]] std::int64_t high_watermark() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  [[nodiscard]] bool has_space(std::size_t count) const {
    return size_ + count <= capacity_;
  }
  void enqueue_locked(const ServeEvent* events, std::size_t count,
                      std::uint64_t enqueue_ns);

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<QueuedEvent> slots_;  ///< preallocated ring storage
  std::size_t capacity_;
  std::size_t head_{0};  ///< index of the oldest queued event
  std::size_t size_{0};
  std::int64_t high_watermark_{0};
  bool closed_{false};
};

}  // namespace mcs::serve
