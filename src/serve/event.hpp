// The serving engine's event vocabulary and JSONL wire format
// (schema "mcs.serve.v1").
//
// The online mechanism is inherently event-driven: tasks are announced as
// sensing queries arrive, phones bid when they join, the slot clock ticks,
// and payments are settled at reported departure. The batch harnesses
// collapse all of that into one Scenario; a serving path cannot. ServeEvent
// is the unit of traffic the streaming engine consumes -- either
// synthesized live by the load generator or decoded from a recorded JSONL
// stream.
//
// Wire format: one JSON object per line. The first line of a stream is the
// header {"schema":"mcs.serve.v1"}; every following line carries an "ev"
// discriminator plus the round it belongs to:
//
//   {"ev":"round_open","round":0,"slots":12,"value":"30"}
//   {"ev":"task_arrived","round":0,"slot":1,"task":0}            (+"value")
//   {"ev":"bid_submitted","round":0,"agent":3,"from":1,"to":4,"cost":"7.5"}
//   {"ev":"slot_tick","round":0,"slot":1}
//   {"ev":"round_close","round":0}
//
// Money fields travel as Money::to_string decimal strings (exact; doubles
// never touch mechanism arithmetic). Encoding and decoding round-trip
// byte-identically, which the replay determinism tests pin.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "common/interval.hpp"
#include "common/money.hpp"
#include "common/types.hpp"
#include "io/json_parse.hpp"
#include "model/bid.hpp"

namespace mcs::serve {

inline constexpr std::string_view kServeSchema = "mcs.serve.v1";

/// Largest admissible round id, shared by both codecs. JSONL numbers pass
/// through double on the read side, so ids above 2^53-1 would round
/// silently; the binary codec carries exact int64 but enforces the same
/// cap so the two formats accept exactly the same streams (the
/// differential fuzz pins this).
inline constexpr std::int64_t kMaxServeRound = (std::int64_t{1} << 53) - 1;

enum class ServeEventKind {
  kRoundOpen,     ///< a new auction round begins (carries horizon + nu)
  kTaskArrived,   ///< sensing query becomes a task in the current slot
  kBidSubmitted,  ///< phone joins the market with its bid (its arrival slot)
  kSlotTick,      ///< the virtual clock closes the named slot
  kRoundClose,    ///< the round is over; settle and emit the outcome
};

[[nodiscard]] std::string_view to_string(ServeEventKind kind);

/// One event on the wire. Fields that do not apply to a kind stay at their
/// defaults; the factory functions below build well-formed events.
struct ServeEvent {
  ServeEventKind kind{ServeEventKind::kSlotTick};
  std::int64_t round{0};

  // kRoundOpen
  Slot::rep_type num_slots{0};  ///< m, the round horizon
  Money round_value;            ///< default task value nu

  // kTaskArrived / kSlotTick (and implied for kBidSubmitted: window begin)
  Slot slot{0};

  // kTaskArrived
  TaskId task{-1};
  std::optional<Money> task_value;  ///< weighted-query override

  // kBidSubmitted
  PhoneId agent{-1};
  SlotInterval window{SlotInterval::of(1, 1)};  ///< reported [a~, d~]
  Money claimed_cost;

  /// Client-side schedule lag at send time (how far behind its intended
  /// paced deadline the producer was), stamped by run_paced_load so the
  /// trace plane can render ingest lag as its own span. In-memory only:
  /// the mcs.serve.v1 codec neither encodes nor decodes it (the wire
  /// format is unchanged; decoded events carry 0).
  std::uint64_t client_lag_ns{0};

  friend bool operator==(const ServeEvent&, const ServeEvent&) = default;
};

/// Factories (the only supported way to build events in code).
[[nodiscard]] ServeEvent round_open(std::int64_t round,
                                    Slot::rep_type num_slots, Money value);
[[nodiscard]] ServeEvent task_arrived(std::int64_t round, Slot slot,
                                      TaskId task,
                                      std::optional<Money> value = {});
[[nodiscard]] ServeEvent bid_submitted(std::int64_t round, PhoneId agent,
                                       const model::Bid& bid);
[[nodiscard]] ServeEvent slot_tick(std::int64_t round, Slot slot);
[[nodiscard]] ServeEvent round_close(std::int64_t round);

/// The bid carried by a kBidSubmitted event.
[[nodiscard]] model::Bid bid_of(const ServeEvent& event);

/// Writes the stream header line ({"schema":"mcs.serve.v1"}\n).
void write_stream_header(std::ostream& os);

/// Writes one event as a single JSONL line (terminated by '\n').
void write_serve_event(std::ostream& os, const ServeEvent& event);

/// Renders one event as its JSONL line, without the trailing newline.
[[nodiscard]] std::string encode_serve_event(const ServeEvent& event);

/// Decodes one parsed line. Throws InvalidArgumentError on an unknown
/// discriminator, missing/mistyped fields, or out-of-domain values.
[[nodiscard]] ServeEvent decode_serve_event(const io::JsonValue& line);

/// Decodes one raw line: the header line yields nullopt, anything else is
/// parsed and decoded (errors as above, including malformed JSON).
[[nodiscard]] std::optional<ServeEvent> decode_serve_line(
    std::string_view line);

}  // namespace mcs::serve
