// Compact binary wire codec for mcs.serve.v1 events ("mcs.serve.b1").
//
// JSONL is the right interchange format -- human-readable, greppable,
// diffable -- and the wrong hot path: every event pays a generic JSON
// parse, a decimal-string Money round trip, and a heap-allocated member
// tree. The binary codec removes all three. Events travel as
// length-prefixed frames of fixed-width little-endian fields with Money as
// its exact int64 micro count; decoding reads straight out of the byte
// span into a stack ServeEvent, touching no allocator.
//
// Stream layout:
//
//   header (8 bytes):  'M' 'C' 'S' 'B'  u16 version (=1, LE)  u16 flags (=0)
//   frame:             u32 payload length (LE), then the payload:
//                      u8 kind, fixed fields per kind (all LE)
//
//   kind 0 round_open     i64 round  i32 slots  i64 value_micros      (21)
//   kind 1 task_arrived   i64 round  i32 slot   i32 task  u8 has_value
//                         [i64 value_micros when has_value=1]    (18 | 26)
//   kind 2 bid_submitted  i64 round  i32 agent  i32 from  i32 to
//                         i64 cost_micros                            (29)
//   kind 3 slot_tick      i64 round  i32 slot                        (13)
//   kind 4 round_close    i64 round                                   (9)
//
// Versioning / compatibility rules (strict by design -- the stream is
// untrusted input on the serving hot path):
//   * the magic and version are mandatory; an unknown version is rejected,
//     never "best-effort" decoded, and v1 requires flags == 0;
//   * a frame's length must equal its kind's exact layout size -- trailing
//     bytes inside a frame, unknown kinds, and lengths beyond
//     kMaxWireFrameBytes are all rejected (no silent skipping: a payment
//     pipeline must not guess);
//   * any format evolution (new kinds, new fields) bumps the version; old
//     decoders then reject the whole stream up front instead of failing
//     midway.
//
// Both codecs enforce identical domain rules (round in [0, 2^53-1], slots
// and slot >= 1, dense non-negative ids, from <= to, non-negative cost,
// Money inside the +/-max() envelope), so for every event stream the
// binary and JSONL decoders accept or reject in lockstep -- the
// differential fuzz in serve_wire_test pins zero divergence. JSONL stays
// the debug/interop format; `mcs_cli transcode` converts losslessly in
// both directions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "serve/event.hpp"

namespace mcs::serve {

/// Schema tag of the binary format (reported in errors and docs; the wire
/// itself carries the 4-byte magic + version below).
inline constexpr std::string_view kWireSchema = "mcs.serve.b1";

inline constexpr char kWireMagic[4] = {'M', 'C', 'S', 'B'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 8;

/// Hard cap on one frame's payload length. The largest v1 frame is 29
/// bytes; anything claiming more is garbage (or a hostile length) and is
/// rejected before any buffering happens.
inline constexpr std::size_t kMaxWireFrameBytes = 64;

/// Appends the 8-byte stream header.
void append_wire_header(std::string& out);

/// Appends one event as a length-prefixed frame.
void append_wire_frame(std::string& out, const ServeEvent& event);

/// One event as its frame bytes (length prefix included).
[[nodiscard]] std::string encode_wire_frame(const ServeEvent& event);

/// Checks a stream header prefix. Returns the bytes consumed
/// (kWireHeaderBytes) or nullopt when `bytes` is a proper prefix of a
/// valid header (feed more). Throws InvalidArgumentError on a wrong magic,
/// unsupported version, or nonzero flags.
[[nodiscard]] std::optional<std::size_t> decode_wire_header(
    std::string_view bytes);

struct DecodedFrame {
  ServeEvent event;
  std::size_t consumed{0};  ///< frame bytes, length prefix included
};

/// Decodes the first frame of `bytes`. Returns nullopt when the bytes are
/// a proper prefix of a well-formed frame (feed more). Throws
/// InvalidArgumentError on malformed or out-of-domain frames -- same
/// domain rules as decode_serve_event, never UB, never zero-filled.
[[nodiscard]] std::optional<DecodedFrame> decode_wire_frame(
    std::string_view bytes);

/// Incremental decoder for chunked transports (sockets deliver frames
/// split at arbitrary byte boundaries). The carry buffer holding a partial
/// frame tail is owned by the decoder and reused across feeds, so a
/// steady-state connection performs no per-event allocation.
class WireDecoder {
 public:
  /// Consumes `bytes`, invoking `sink` once per completed event frame (the
  /// stream header is consumed silently). Returns the number of events
  /// decoded by this call. Throws InvalidArgumentError on malformed input
  /// (the connection is then poisoned: further feeds keep throwing).
  std::int64_t feed(std::string_view bytes,
                    const std::function<void(const ServeEvent&)>& sink);

  /// True when no partial frame is buffered -- i.e. EOF here is a clean
  /// end of stream rather than a truncated frame.
  [[nodiscard]] bool idle() const { return carry_.empty() && !poisoned_; }

  [[nodiscard]] bool header_seen() const { return header_done_; }

  /// Events decoded over the decoder's lifetime.
  [[nodiscard]] std::int64_t events_decoded() const { return decoded_; }

 private:
  std::string carry_;  ///< partial frame tail; capacity is retained
  bool header_done_{false};
  bool poisoned_{false};
  std::int64_t decoded_{0};
};

// ------------------------------------------------------ stream transcoding

enum class WireFormat {
  kJsonl,   ///< mcs.serve.v1 JSON lines (debug / interop)
  kBinary,  ///< mcs.serve.b1 frames (hot path)
};

[[nodiscard]] std::string_view to_string(WireFormat format);

/// Sniffs a stream's format from its first bytes without consuming them:
/// the binary magic 'MCSB' selects kBinary, anything else kJsonl (whose
/// own parser then reports precise errors).
[[nodiscard]] WireFormat detect_stream_format(std::istream& is);

/// Reads a whole serve stream in either format (autodetected), invoking
/// `sink` per event. Throws InvalidArgumentError naming the line (JSONL)
/// or byte offset (binary) on malformed input, including a truncated
/// final frame. Returns the number of events.
std::int64_t read_serve_stream(
    std::istream& is, const std::function<void(const ServeEvent&)>& sink);

/// Losslessly transcodes a serve stream (autodetected input format) into
/// `to`. Event-preserving and, for canonical streams, byte-exact on a
/// round trip: jsonl -> binary -> jsonl reproduces the input bytes.
/// Returns the number of events transcoded.
std::int64_t transcode_serve_stream(std::istream& is, std::ostream& os,
                                    WireFormat to);

}  // namespace mcs::serve
