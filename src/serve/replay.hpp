// Replaying a recorded serve stream (either wire format) through the
// engine.
//
// The decoder treats the stream as untrusted bytes. JSONL goes through
// io::parse_json (hardened against truncation, deep nesting, and invalid
// escapes) plus the strict field checks of decode_serve_event; binary
// (mcs.serve.b1, autodetected by its magic) goes through the equally
// strict decode_wire_frame. A corrupt stream produces a clean
// InvalidArgumentError naming the line (JSONL) or byte region (binary) --
// never UB. Admission rejections (kReject policy under load) are counted,
// not fatal: shedding is the policy working as configured.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "serve/engine.hpp"

namespace mcs::serve {

struct ReplayStats {
  /// Non-empty JSONL lines consumed, header included (0 for a binary
  /// stream -- frames are not line-shaped).
  std::int64_t lines{0};
  std::int64_t events{0};    ///< events decoded
  std::int64_t accepted{0};  ///< events the engine admitted
  std::int64_t shed{0};      ///< events rejected by admission control
};

/// Feeds every event of `is` into `engine` (the caller drains
/// afterwards), autodetecting the wire format. When `batch` is true the
/// events are handed over through a ShardBatcher sized by the engine's
/// batch_size (shed accounting then has batch granularity). Throws
/// InvalidArgumentError on malformed input; blank JSONL lines are
/// skipped, a header line may appear anywhere but is only expected first.
ReplayStats replay_event_stream(std::istream& is, ServeEngine& engine,
                                bool batch = false);

}  // namespace mcs::serve
