// Replaying a recorded mcs.serve.v1 stream through the engine.
//
// The decoder treats the stream as untrusted bytes: every line goes
// through io::parse_json (hardened against truncation, deep nesting, and
// invalid escapes) and the strict field checks of decode_serve_event, so a
// corrupt stream produces a clean InvalidArgumentError naming the line --
// never UB. Admission rejections (kReject policy under load) are counted,
// not fatal: shedding is the policy working as configured.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "serve/engine.hpp"

namespace mcs::serve {

struct ReplayStats {
  std::int64_t lines{0};     ///< non-empty lines consumed (header included)
  std::int64_t events{0};    ///< events decoded
  std::int64_t accepted{0};  ///< events the engine admitted
  std::int64_t shed{0};      ///< events rejected by admission control
};

/// Feeds every line of `is` into `engine` (the caller drains afterwards).
/// Throws InvalidArgumentError, with a 1-based line number, on malformed
/// input; blank lines are skipped, a header line may appear anywhere but
/// is only expected first.
ReplayStats replay_event_stream(std::istream& is, ServeEngine& engine);

}  // namespace mcs::serve
