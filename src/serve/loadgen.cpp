#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/wire.hpp"

namespace mcs::serve {

model::Scenario loadgen_scenario(const LoadGenConfig& config,
                                 std::int64_t round) {
  // The shared (seed, round) fork discipline: round k's scenario is
  // reproducible without replaying rounds 0..k-1, and any driver with the
  // same (workload, seed) sees the same stream.
  return model::round_scenario(config.workload, config.seed, round);
}

std::vector<ServeEvent> round_events(std::int64_t round,
                                     const model::Scenario& scenario,
                                     const model::BidProfile& bids) {
  std::vector<ServeEvent> events;
  // round_open + close + one tick per slot + one event per task and bid.
  events.reserve(2 + static_cast<std::size_t>(scenario.num_slots) +
                 scenario.tasks.size() + bids.size());
  events.push_back(round_open(round, scenario.num_slots, scenario.task_value));

  std::size_t task_cursor = 0;
  for (Slot::rep_type t = 1; t <= scenario.num_slots; ++t) {
    while (task_cursor < scenario.tasks.size() &&
           scenario.tasks[task_cursor].slot.value() == t) {
      const model::Task& task = scenario.tasks[task_cursor];
      events.push_back(task_arrived(round, Slot{t}, task.id, task.value));
      ++task_cursor;
    }
    for (std::size_t i = 0; i < bids.size(); ++i) {
      if (bids[i].window.begin().value() != t) continue;
      events.push_back(bid_submitted(
          round, PhoneId{static_cast<PhoneId::rep_type>(i)}, bids[i]));
    }
    events.push_back(slot_tick(round, Slot{t}));
  }
  events.push_back(round_close(round));
  return events;
}

std::int64_t generate_events(
    const LoadGenConfig& config,
    const std::function<bool(const ServeEvent&)>& emit) {
  std::int64_t emitted = 0;
  for (std::int64_t round = 0; round < config.rounds; ++round) {
    const model::Scenario scenario = loadgen_scenario(config, round);
    const model::BidProfile bids = scenario.truthful_bids();
    for (const ServeEvent& event : round_events(round, scenario, bids)) {
      if (!emit(event)) return emitted;
      ++emitted;
    }
  }
  return emitted;
}

std::int64_t write_event_stream(std::ostream& os,
                                const LoadGenConfig& config) {
  write_stream_header(os);
  return generate_events(config, [&os](const ServeEvent& event) {
    write_serve_event(os, event);
    return static_cast<bool>(os);
  });
}

std::int64_t write_wire_stream(std::ostream& os,
                               const LoadGenConfig& config) {
  // Frames are encoded into a reused buffer and flushed in chunks so the
  // stream write cost is amortized like the engine's batched handoff.
  std::string buffer;
  append_wire_header(buffer);
  const std::int64_t frames =
      generate_events(config, [&](const ServeEvent& event) {
        append_wire_frame(buffer, event);
        if (buffer.size() >= std::size_t{64} * 1024) {
          os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
          buffer.clear();
        }
        return static_cast<bool>(os);
      });
  if (!buffer.empty()) {
    os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
  return frames;
}

PaceReport run_paced_load(
    const LoadGenConfig& config, const PaceConfig& pace,
    const std::function<bool(const ServeEvent&)>& submit) {
  if (!(pace.target_eps > 0.0)) {
    throw InvalidArgumentError("paced load requires target_eps > 0");
  }
  obs::MonotonicClock& clock =
      pace.clock != nullptr ? *pace.clock : obs::steady_clock();
  const auto sleep_ns =
      pace.sleep_ns ? pace.sleep_ns : [](std::uint64_t ns) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
      };
  const double gap_ns = 1e9 / pace.target_eps;

  PaceReport report;
  const std::uint64_t t0 = clock.now_ns();
  generate_events(config, [&](const ServeEvent& event) {
    const std::uint64_t deadline =
        t0 + static_cast<std::uint64_t>(gap_ns *
                                        static_cast<double>(report.offered));
    std::uint64_t now = clock.now_ns();
    if (now < deadline) {
      sleep_ns(deadline - now);
      now = clock.now_ns();
    }
    // The schedule lag travels with the event (client_lag_ns) so the
    // trace plane can draw client-side lateness as a distinct ingest
    // span; a lag is a duration, so it is valid across clock domains
    // (the pace clock and the planes' uptime clocks differ in epoch).
    ServeEvent stamped = event;
    if (now > deadline) {
      const std::uint64_t lag = now - deadline;
      report.max_lag_ns = std::max(report.max_lag_ns, lag);
      if (static_cast<double>(lag) > gap_ns) ++report.late_events;
      stamped.client_lag_ns = lag;
    }
    ++report.offered;
    if (submit(stamped)) {
      ++report.accepted;
    } else {
      ++report.shed;
    }
    return true;
  });
  report.duration_ns = clock.now_ns() - t0;
  return report;
}

}  // namespace mcs::serve
