#include "serve/trace_plane.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "io/json.hpp"
#include "obs/export.hpp"

namespace mcs::serve {

namespace {

/// Auto mode: refresh the rolling-p99 threshold every this many closes...
constexpr std::int64_t kAutoRefreshEvery = 16;
/// ...once the shard has at least this many round latencies (warm-up: an
/// unwarmed sampler retains nothing as slow, so startup jitter does not
/// flood the rings).
constexpr std::uint64_t kAutoWarmupSamples = 32;

std::int64_t i64(std::uint64_t v) { return static_cast<std::int64_t>(v); }

}  // namespace

TracePlane::TracePlane(TracePlaneConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &obs::steady_clock()),
      exemplars_(config.exemplar_threshold_ns) {}

void TracePlane::attach(int shards) {
  MCS_EXPECTS(shards >= 1, "trace plane: shards must be >= 1");
  lanes_.clear();
  lanes_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    lanes_.push_back(std::make_unique<Lane>(config_));
    if (config_.slow_threshold_ns != 0) {
      lanes_.back()->auto_threshold_ns = config_.slow_threshold_ns;
      lanes_.back()->effective_threshold_ns.store(config_.slow_threshold_ns,
                                                  std::memory_order_relaxed);
    }
  }
  start_ns_ = clock_->now_ns();
}

std::uint64_t TracePlane::now_ns() {
  const std::uint64_t now = clock_->now_ns();
  return now >= start_ns_ ? now - start_ns_ : 0;
}

void TracePlane::on_event(int shard, std::uint64_t queue_wait_ns,
                          std::uint64_t client_lag_ns) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  lane.phase_sketch[static_cast<std::size_t>(obs::TracePhase::kQueueWait)]
      .record_ns(queue_wait_ns);
  lane.phase_sketch[static_cast<std::size_t>(obs::TracePhase::kIngest)]
      .record_ns(client_lag_ns);
}

void TracePlane::on_round_open(int shard, std::int64_t round,
                               std::uint64_t enqueue_ns,
                               std::uint64_t begin_ns,
                               std::uint64_t client_lag_ns) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  obs::RoundTrace trace;
  trace.trace_id = obs::trace_id_of(round);
  trace.round = round;
  trace.shard = shard;
  trace.open_ns = begin_ns;
  // Producer-side spans: the ingest span reaches back by the client's
  // schedule lag (how late the paced sender was), the queue span covers
  // enqueue -> worker pickup.
  const std::uint64_t intended_ns =
      enqueue_ns >= client_lag_ns ? enqueue_ns - client_lag_ns : 0;
  trace.add_span(obs::TracePhase::kIngest, -1, intended_ns, enqueue_ns,
                 config_.max_spans);
  trace.add_span(obs::TracePhase::kQueueWait, -1, enqueue_ns,
                 std::max(begin_ns, enqueue_ns), config_.max_spans);
  lane.open.insert_or_assign(round, std::move(trace));
  lane.rounds_traced.fetch_add(1, std::memory_order_relaxed);
}

void TracePlane::on_slot_tick(int shard, std::int64_t round, std::int32_t slot,
                              std::uint64_t begin_ns, std::uint64_t end_ns) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  const auto it = lane.open.find(round);
  if (it == lane.open.end()) return;
  it->second.add_span(obs::TracePhase::kSlotTick, slot, begin_ns, end_ns,
                      config_.max_spans);
  lane.phase_sketch[static_cast<std::size_t>(obs::TracePhase::kSlotTick)]
      .record_ns(end_ns >= begin_ns ? end_ns - begin_ns : 0);
}

void TracePlane::on_round_complete(int shard, std::int64_t round,
                                   std::uint64_t close_begin_ns,
                                   std::uint64_t settled_ns,
                                   std::uint64_t done_ns,
                                   std::int64_t econ_violations) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  const auto it = lane.open.find(round);
  if (it == lane.open.end()) return;
  obs::RoundTrace trace = std::move(it->second);
  lane.open.erase(it);

  trace.add_span(obs::TracePhase::kPayment, -1, close_begin_ns, settled_ns,
                 config_.max_spans);
  if (done_ns > settled_ns) {
    trace.add_span(obs::TracePhase::kAudit, -1, settled_ns, done_ns,
                   config_.max_spans);
  }
  trace.add_span(obs::TracePhase::kRoundClose, -1, done_ns, done_ns,
                 config_.max_spans);
  trace.status = obs::TraceStatus::kCompleted;
  trace.violations = econ_violations;
  trace.close_ns = done_ns;
  // Same latency definition as the live plane: close processing begin
  // minus open processing begin, so trace-report quantiles line up with
  // the live sketch snapshots.
  trace.latency_ns =
      close_begin_ns >= trace.open_ns ? close_begin_ns - trace.open_ns : 0;

  lane.phase_sketch[static_cast<std::size_t>(obs::TracePhase::kPayment)]
      .record_ns(settled_ns >= close_begin_ns ? settled_ns - close_begin_ns
                                              : 0);
  if (done_ns > settled_ns) {
    lane.phase_sketch[static_cast<std::size_t>(obs::TracePhase::kAudit)]
        .record_ns(done_ns - settled_ns);
  }
  auto& close_sketch =
      lane.phase_sketch[static_cast<std::size_t>(obs::TracePhase::kRoundClose)];
  close_sketch.record_ns(trace.latency_ns);
  lane.rounds_completed.fetch_add(1, std::memory_order_relaxed);

  // Tail sampler. In auto mode the threshold trails the shard's own p99
  // round latency (refreshed every few closes after a warm-up).
  if (config_.slow_threshold_ns == 0) {
    if (++lane.closes_since_refresh >= kAutoRefreshEvery) {
      lane.closes_since_refresh = 0;
      if (close_sketch.count() >= kAutoWarmupSamples) {
        const double p99 = close_sketch.snapshot().quantile_ns(0.99);
        lane.auto_threshold_ns =
            p99 > 0.0 ? static_cast<std::uint64_t>(p99) : ~0ULL;
        lane.effective_threshold_ns.store(lane.auto_threshold_ns,
                                          std::memory_order_relaxed);
      }
    }
  }
  unsigned reasons = 0;
  if (trace.latency_ns >= lane.auto_threshold_ns) reasons |= obs::retain::kSlow;
  if (econ_violations > 0) reasons |= obs::retain::kEconViolation;

  exemplars_.offer(trace.latency_ns, trace.trace_id, round);
  seal(lane, std::move(trace), reasons);
}

void TracePlane::on_round_corrupted(int shard, std::int64_t round,
                                    std::uint64_t at_ns) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  const auto it = lane.open.find(round);
  if (it == lane.open.end()) return;
  obs::RoundTrace trace = std::move(it->second);
  lane.open.erase(it);
  trace.status = obs::TraceStatus::kCorrupted;
  trace.close_ns = at_ns;
  trace.latency_ns = at_ns >= trace.open_ns ? at_ns - trace.open_ns : 0;
  seal(lane, std::move(trace), obs::retain::kError);
}

void TracePlane::on_orphaned_event(int shard, std::int64_t round,
                                   std::uint64_t at_ns) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  // One stub per shed round: later orphans of the same round (or of a
  // round we already sealed as corrupted) do not multiply records.
  if (lane.open.contains(round) || !lane.orphan_rounds.insert(round).second) {
    return;
  }
  obs::RoundTrace trace;
  trace.trace_id = obs::trace_id_of(round);
  trace.round = round;
  trace.shard = shard;
  trace.status = obs::TraceStatus::kOrphaned;
  trace.open_ns = at_ns;
  lane.rounds_traced.fetch_add(1, std::memory_order_relaxed);
  lane.open.insert_or_assign(round, std::move(trace));
}

void TracePlane::on_worker_exit(int shard, std::uint64_t at_ns) {
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  // Seal leftovers in round order so the ring contents are deterministic
  // for a given event stream.
  std::vector<std::int64_t> rounds;
  rounds.reserve(lane.open.size());
  for (const auto& [round, trace] : lane.open) rounds.push_back(round);
  std::sort(rounds.begin(), rounds.end());
  for (const std::int64_t round : rounds) {
    const auto it = lane.open.find(round);
    obs::RoundTrace trace = std::move(it->second);
    lane.open.erase(it);
    if (trace.status == obs::TraceStatus::kOpen) {
      trace.status = obs::TraceStatus::kAbandoned;
    }
    trace.close_ns = at_ns;
    trace.latency_ns = at_ns >= trace.open_ns ? at_ns - trace.open_ns : 0;
    seal(lane, std::move(trace), obs::retain::kError);
  }
  lane.orphan_rounds.clear();
}

void TracePlane::seal(Lane& lane, obs::RoundTrace trace,
                      unsigned extra_reasons) {
  trace.retained |= extra_reasons;
  const unsigned reasons = trace.retained;
  lane.spans_truncated.fetch_add(trace.spans_dropped,
                                 std::memory_order_relaxed);
  if (reasons != 0) {
    lane.retained.fetch_add(1, std::memory_order_relaxed);
    if ((reasons & obs::retain::kSlow) != 0) {
      lane.retained_slow.fetch_add(1, std::memory_order_relaxed);
    }
    if ((reasons & obs::retain::kEconViolation) != 0) {
      lane.retained_econ.fetch_add(1, std::memory_order_relaxed);
    }
    if ((reasons & obs::retain::kError) != 0) {
      lane.retained_error.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    lane.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  const obs::TraceRing::PushResult push =
      lane.ring.push(std::move(trace), reasons != 0);
  if (push.evicted_pinned) {
    lane.retained_evicted.fetch_add(1, std::memory_order_relaxed);
  }
}

TraceSummary TracePlane::summary() const {
  TraceSummary out;
  out.slow_threshold_ns = 0;
  for (std::size_t p = 0; p < obs::kTracePhaseCount; ++p) {
    out.phases[p].phase = static_cast<obs::TracePhase>(p);
  }
  for (const auto& lane : lanes_) {
    out.rounds_traced += lane->rounds_traced.load(std::memory_order_relaxed);
    out.rounds_completed +=
        lane->rounds_completed.load(std::memory_order_relaxed);
    out.retained += lane->retained.load(std::memory_order_relaxed);
    out.retained_slow +=
        lane->retained_slow.load(std::memory_order_relaxed);
    out.retained_econ +=
        lane->retained_econ.load(std::memory_order_relaxed);
    out.retained_error +=
        lane->retained_error.load(std::memory_order_relaxed);
    out.dropped += lane->dropped.load(std::memory_order_relaxed);
    out.retained_evicted +=
        lane->retained_evicted.load(std::memory_order_relaxed);
    out.spans_truncated +=
        lane->spans_truncated.load(std::memory_order_relaxed);
    out.slow_threshold_ns =
        std::max(out.slow_threshold_ns,
                 lane->effective_threshold_ns.load(std::memory_order_relaxed));
    for (std::size_t p = 0; p < obs::kTracePhaseCount; ++p) {
      out.phases[p].sketch.merge(lane->phase_sketch[p].snapshot());
    }
  }
  if (lanes_.empty()) out.slow_threshold_ns = ~0ULL;
  return out;
}

std::vector<obs::RoundTrace> TracePlane::retained() const {
  std::vector<obs::RoundTrace> out;
  for (const auto& lane : lanes_) {
    for (const obs::TraceRing::Entry& entry : lane->ring.entries()) {
      if (entry.pinned) out.push_back(entry.trace);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const obs::RoundTrace& a, const obs::RoundTrace& b) {
              return a.round < b.round;
            });
  return out;
}

// ---------------------------------------------------------------- export

void write_trace_stream(std::ostream& os, const TracePlane& plane) {
  const TraceSummary summary = plane.summary();
  {
    io::JsonWriter json(os);
    json.begin_object();
    json.field("schema", obs::kTraceSchema);
    json.field("shards", static_cast<std::int64_t>(plane.shards()));
    json.field("ring_capacity",
               static_cast<std::int64_t>(plane.config().ring_capacity));
    json.field("max_spans",
               static_cast<std::int64_t>(plane.config().max_spans));
    json.key("slow_threshold_ns");
    if (plane.config().slow_threshold_ns == 0) {
      json.value("auto");
    } else {
      json.value(i64(plane.config().slow_threshold_ns));
    }
    json.end_object();
    os << '\n';
  }
  for (const obs::RoundTrace& trace : plane.retained()) {
    io::JsonWriter json(os);
    json.begin_object();
    json.field("type", "trace");
    json.field("trace_id", obs::format_trace_id(trace.trace_id));
    json.field("round", trace.round);
    json.field("shard", static_cast<std::int64_t>(trace.shard));
    json.field("status", obs::to_string(trace.status));
    json.key("retained").begin_array();
    if ((trace.retained & obs::retain::kSlow) != 0) json.value("slow");
    if ((trace.retained & obs::retain::kEconViolation) != 0) {
      json.value("econ_violation");
    }
    if ((trace.retained & obs::retain::kError) != 0) json.value("error");
    json.end_array();
    json.field("violations", trace.violations);
    json.field("open_ns", i64(trace.open_ns));
    json.field("close_ns", i64(trace.close_ns));
    json.field("latency_ns", i64(trace.latency_ns));
    json.field("spans_dropped", static_cast<std::int64_t>(trace.spans_dropped));
    json.key("spans").begin_array();
    for (const obs::RoundSpan& span : trace.spans) {
      json.begin_object();
      json.field("phase", obs::to_string(span.phase));
      if (span.slot >= 0) {
        json.field("slot", static_cast<std::int64_t>(span.slot));
      }
      json.field("start_ns", i64(span.start_ns));
      json.field("end_ns", i64(span.end_ns));
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  {
    io::JsonWriter json(os);
    json.begin_object();
    json.field("type", "summary");
    json.field("rounds", summary.rounds_traced);
    json.field("completed", summary.rounds_completed);
    json.field("retained", summary.retained);
    json.field("retained_slow", summary.retained_slow);
    json.field("retained_econ", summary.retained_econ);
    json.field("retained_error", summary.retained_error);
    json.field("dropped", summary.dropped);
    json.field("retained_evicted", summary.retained_evicted);
    json.field("spans_truncated", summary.spans_truncated);
    json.key("slow_threshold_ns");
    if (summary.slow_threshold_ns == ~0ULL) {
      json.null();  // auto sampler never warmed up
    } else {
      json.value(i64(summary.slow_threshold_ns));
    }
    json.key("phases").begin_object();
    for (const TracePhaseSummary& phase : summary.phases) {
      json.key(obs::to_string(phase.phase)).begin_object();
      json.field("count", static_cast<std::int64_t>(phase.sketch.count));
      if (phase.sketch.empty()) {
        json.key("p50_ns").null();
        json.key("p99_ns").null();
        json.field("max_ns", std::int64_t{0});
      } else {
        json.field("p50_ns", phase.sketch.quantile_ns(0.50));
        json.field("p99_ns", phase.sketch.quantile_ns(0.99));
        json.field("max_ns", i64(phase.sketch.max_ns));
      }
      json.end_object();
    }
    json.end_object();
    json.end_object();
    os << '\n';
  }
  {
    io::JsonWriter json(os);
    json.begin_object();
    json.field("type", "exemplars");
    json.field("threshold_ns", i64(plane.exemplars().threshold_ns()));
    json.key("entries").begin_array();
    for (const auto& exemplar : plane.exemplars().snapshot()) {
      json.begin_object();
      json.field("le_ns", i64(exemplar.bucket_le_ns));
      json.field("latency_ns", i64(exemplar.value_ns));
      json.field("trace_id", obs::format_trace_id(exemplar.trace_id));
      json.field("round", exemplar.round);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
}

void write_trace_chrome(std::ostream& os, const TracePlane& plane) {
  std::vector<obs::ChromeLane> lanes;
  lanes.push_back(obs::ChromeLane{1, 1, "producer"});
  for (int s = 0; s < plane.shards(); ++s) {
    lanes.push_back(
        obs::ChromeLane{1, 2 + s, "shard " + std::to_string(s)});
  }
  std::vector<obs::ChromeEvent> events;
  for (const obs::RoundTrace& trace : plane.retained()) {
    const std::int64_t shard_tid = 2 + trace.shard;
    obs::ChromeEvent round_event;
    round_event.name = "round " + std::to_string(trace.round);
    round_event.tid = shard_tid;
    round_event.ts_us = i64(trace.open_ns / 1000);
    round_event.dur_us = i64(trace.close_ns >= trace.open_ns
                                 ? (trace.close_ns - trace.open_ns) / 1000
                                 : 0);
    round_event.flow_in = trace.round;
    events.push_back(std::move(round_event));
    for (const obs::RoundSpan& span : trace.spans) {
      if (span.phase == obs::TracePhase::kRoundClose) continue;
      obs::ChromeEvent event;
      const bool producer_side = span.phase == obs::TracePhase::kIngest ||
                                 span.phase == obs::TracePhase::kQueueWait;
      event.name = span.phase == obs::TracePhase::kSlotTick
                       ? "slot " + std::to_string(span.slot)
                       : std::string(obs::to_string(span.phase));
      event.tid = producer_side ? 1 : shard_tid;
      event.ts_us = i64(span.start_ns / 1000);
      event.dur_us = i64(span.duration_ns() / 1000);
      if (span.phase == obs::TracePhase::kQueueWait) {
        event.flow_out = trace.round;
      }
      events.push_back(std::move(event));
    }
  }
  write_chrome_trace_events(os, lanes, events,
                            {{"schema", std::string(obs::kTraceSchema)}});
}

}  // namespace mcs::serve
