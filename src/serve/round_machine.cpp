#include "serve/round_machine.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mcs::serve {

namespace {

[[noreturn]] void stream_error(std::int64_t round, const std::string& what) {
  throw InvalidArgumentError("serve stream, round " + std::to_string(round) +
                             ": " + what);
}

}  // namespace

RoundMachine::RoundMachine(const ServeEvent& open,
                           auction::OnlineGreedyConfig config, bool capture)
    : round_(open.round),
      clock_(open.num_slots),
      platform_(open.num_slots, open.round_value, config),
      capture_(capture),
      num_slots_(open.num_slots),
      round_value_(open.round_value) {
  if (open.kind != ServeEventKind::kRoundOpen) {
    stream_error(open.round, "round must start with round_open");
  }
  outcome_.round = round_;
  outcome_.events_consumed = 1;  // the round_open itself
}

bool RoundMachine::apply(const ServeEvent& event) {
  if (event.round != round_) {
    stream_error(round_, "event routed to the wrong round");
  }
  if (done_) stream_error(round_, "event after round_close");
  ++outcome_.events_consumed;

  switch (event.kind) {
    case ServeEventKind::kRoundOpen:
      stream_error(round_, "duplicate round_open");

    case ServeEventKind::kTaskArrived:
      clock_.expect_now(event.slot);
      platform_.announce_task(event.task, event.task_value);
      ++outcome_.tasks_announced;
      if (capture_) {
        captured_tasks_.push_back(
            model::Task{event.task, event.slot, event.task_value});
      }
      return false;

    case ServeEventKind::kBidSubmitted: {
      clock_.expect_now(event.window.begin());
      if (event.window.end().value() > clock_.horizon()) {
        stream_error(round_, "bid window extends past the round horizon");
      }
      const auto index = static_cast<std::size_t>(event.agent.value());
      if (index < agent_bid_.size() && agent_bid_[index]) {
        stream_error(round_, "agent " + std::to_string(event.agent.value()) +
                                 " bid twice");
      }
      if (index >= agent_bid_.size()) agent_bid_.resize(index + 1, false);
      agent_bid_[index] = true;
      if (capture_) {
        if (index >= captured_bids_.size()) captured_bids_.resize(index + 1);
        captured_bids_[index] = bid_of(event);
      }
      if (platform_.submit_bid(event.agent, bid_of(event))) {
        ++outcome_.bids_admitted;
      } else {
        ++outcome_.bids_rejected;  // platform reserve said no
      }
      return false;
    }

    case ServeEventKind::kSlotTick: {
      clock_.tick(event.slot);
      const platform::SlotReport report = platform_.advance_slot();
      for (const auto& assignment : report.assignments) {
        assignments_.push_back(assignment);
      }
      for (const auto& payment : report.payments) {
        payments_.push_back(payment);
      }
      return false;
    }

    case ServeEventKind::kRoundClose: {
      if (!clock_.finished()) {
        stream_error(round_, "round_close before the last slot_tick");
      }
      // Materialize the batch-comparable outcome. Agent ids are dense per
      // the scenario convention, so the bid events seen fix the phone
      // count; task ids were validated dense by the platform.
      const int phone_count = static_cast<int>(agent_bid_.size());
      const int task_count = static_cast<int>(outcome_.tasks_announced);
      outcome_.outcome.allocation = auction::Allocation(task_count, phone_count);
      for (const auto& [task, agent] : assignments_) {
        outcome_.outcome.allocation.assign(task, agent);
      }
      outcome_.outcome.payments.assign(static_cast<std::size_t>(phone_count),
                                       Money{});
      for (const auto& [agent, payment] : payments_) {
        outcome_.outcome.payments[static_cast<std::size_t>(agent.value())] =
            payment;
        outcome_.total_paid += payment;
      }
      done_ = true;
      obs::count("serve.rounds_completed");
      return true;
    }
  }
  stream_error(round_, "unhandled event kind");
}

RoundOutcome RoundMachine::take_outcome() {
  MCS_EXPECTS(done_, "take_outcome requires a closed round");
  return std::move(outcome_);
}

bool RoundMachine::capture_complete() const {
  if (!capture_ || !done_) return false;
  for (const std::optional<model::Bid>& bid : captured_bids_) {
    if (!bid) return false;
  }
  return captured_bids_.size() == agent_bid_.size();
}

CapturedRound RoundMachine::take_captured() {
  MCS_EXPECTS(capture_complete(),
              "take_captured requires a closed, fully-captured round");
  CapturedRound captured;
  captured.scenario.num_slots = num_slots_;
  captured.scenario.task_value = round_value_;
  captured.scenario.tasks = std::move(captured_tasks_);
  captured.scenario.phones.reserve(captured_bids_.size());
  captured.bids.reserve(captured_bids_.size());
  for (std::optional<model::Bid>& bid : captured_bids_) {
    // Claimed == true: the reconstruction treats reports as ground truth
    // (the engine has nothing else), so bids equals truthful_bids().
    captured.scenario.phones.push_back(
        model::TrueProfile{bid->window, bid->claimed_cost});
    captured.bids.push_back(*bid);
  }
  return captured;
}

}  // namespace mcs::serve
