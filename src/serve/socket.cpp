#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace mcs::serve {

namespace {

[[noreturn]] void socket_fail(const std::string& what) {
  throw IoError("serve socket: " + what + " (" + std::strerror(errno) + ")");
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("serve socket: invalid IPv4 address '" + host + "'");
  }
  return addr;
}

/// Newline-splitting decoder for JSONL connections: the per-connection
/// mirror of WireDecoder, so both formats share the reader loop.
class LineDecoder {
 public:
  std::int64_t feed(std::string_view bytes,
                    const SocketServer::Sink& sink) {
    std::int64_t events = 0;
    carry_.append(bytes);
    std::size_t start = 0;
    for (std::size_t nl = carry_.find('\n', start);
         nl != std::string::npos; nl = carry_.find('\n', start)) {
      const std::string_view line(carry_.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      if (const std::optional<ServeEvent> event = decode_serve_line(line)) {
        ++events;
        sink(*event);
      }
    }
    carry_.erase(0, start);
    return events;
  }

  [[nodiscard]] bool idle() const { return carry_.empty(); }

 private:
  std::string carry_;
};

}  // namespace

// ------------------------------------------------------------ SocketServer

SocketServer::SocketServer(SocketServerConfig config, Sink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (started_) throw IoError("serve socket: start() called twice");
  if (::pipe(wake_pipe_) != 0) socket_fail("pipe");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) socket_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(config_.host, config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    socket_fail("bind to " + config_.host + ":" +
                std::to_string(config_.port));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) socket_fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    socket_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void SocketServer::drain() {
  if (!started_) return;
  draining_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  // The acceptor empties the kernel backlog before exiting, so producers
  // that connected-sent-closed before this call lose nothing; readers then
  // run to their natural EOF.
  join_all();
  close_fds();
  started_ = false;
  draining_.store(false);
}

void SocketServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  // Wake the acceptor's poll, then shut down every live connection so the
  // reader threads return immediately (buffered bytes are dropped).
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  join_all();
  close_fds();
  started_ = false;
  stopping_.store(false);
}

void SocketServer::join_all() {
  if (acceptor_.joinable()) acceptor_.join();
  // Reader threads may still be spawning from the acceptor until it joins;
  // only then is threads_ stable.
  std::vector<std::thread> readers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    readers.swap(threads_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::close_fds() {
  close_quietly(listen_fd_);
  close_quietly(wake_pipe_[0]);
  close_quietly(wake_pipe_[1]);
}

SocketServerStats SocketServer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SocketServerStats stats;
  stats.connections = connections_;
  stats.events = events_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_;
  return stats;
}

void SocketServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load() ||
        draining_.load()) {
      if (draining_.load() && !stopping_.load()) drain_backlog();
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    if (!accept_one(/*blocking=*/true)) break;
  }
}

/// Accepts connections already completed by the kernel until the backlog
/// is empty -- the graceful half of drain().
void SocketServer::drain_backlog() {
  while (true) {
    pollfd fd{listen_fd_, POLLIN, 0};
    if (::poll(&fd, 1, 0) <= 0 || (fd.revents & POLLIN) == 0) break;
    if (!accept_one(/*blocking=*/false)) break;
  }
}

bool SocketServer::accept_one(bool blocking) {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return blocking;
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load()) {
    ::close(fd);
    return false;
  }
  ++connections_;
  conn_fds_.push_back(fd);
  threads_.emplace_back([this, fd] { connection_loop(fd); });
  return true;
}

void SocketServer::connection_loop(int fd) {
  WireDecoder wire;
  LineDecoder lines;
  bool format_known = false;
  bool binary = false;
  bool failed = false;
  char chunk[1 << 16];
  const Sink count_and_forward = [this](const ServeEvent& event) {
    // A throwing sink (e.g. the engine rejecting after stop()) poisons
    // this connection exactly like a decode error would.
    sink_(event);
    events_.fetch_add(1, std::memory_order_relaxed);
  };
  while (true) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      failed = true;
      break;
    }
    if (got == 0) break;  // clean EOF (or shutdown() from stop())
    const std::string_view bytes(chunk, static_cast<std::size_t>(got));
    if (!format_known) {
      binary = bytes.front() == kWireMagic[0];
      format_known = true;
    }
    try {
      if (binary) {
        wire.feed(bytes, count_and_forward);
      } else {
        lines.feed(bytes, count_and_forward);
      }
    } catch (const Error&) {
      failed = true;  // malformed input: drop only this connection
      break;
    }
  }
  if (!failed && format_known) {
    // A stream that ends mid-frame (or mid-line) was truncated.
    failed = binary ? (!wire.idle() || !wire.header_seen()) : !lines.idle();
  }
  ::shutdown(fd, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (failed) ++decode_errors_;
  std::erase(conn_fds_, fd);
  ::close(fd);
}

// ------------------------------------------------------------ SocketClient

SocketClient::~SocketClient() { close(); }

SocketClient::SocketClient(SocketClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

SocketClient& SocketClient::operator=(SocketClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

SocketClient SocketClient::connect(const std::string& host, int port) {
  SocketClient client;
  client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client.fd_ < 0) socket_fail("socket");
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    socket_fail("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return client;
}

void SocketClient::send(std::string_view bytes) {
  if (fd_ < 0) throw IoError("serve socket: send on a closed client");
  while (!bytes.empty()) {
    const ssize_t sent = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      socket_fail("send");
    }
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
}

void SocketClient::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_WR);
    close_quietly(fd_);
  }
}

}  // namespace mcs::serve
