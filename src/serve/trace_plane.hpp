// Per-round causal tracing of the serving engine -- the third plane.
//
// The deterministic plane says how much work happened, the live plane
// says how slow it was; this plane says *where* a slow round spent its
// time. Every round flowing through the engine gets a trace id
// (obs::trace_id_of, a pure function of the round id) and a bounded span
// timeline: client-side ingest lag (stamped by the paced loadgen), queue
// wait, one span per slot_tick allocation step, payment settlement, the
// econ audit, and a terminal round_close marker.
//
// Quarantine discipline is identical to LiveTelemetry: the engine's
// hooks record into per-shard state owned by that shard's worker (plain
// writes, no locks) plus relaxed-atomic summary counters and latency
// sketches -- never a MetricsRegistry counter. Trace-on vs trace-off
// leaves the deterministic merge bit-identical (pinned by
// serve_trace_test, same discipline as serve_telemetry_test).
//
// Retention is tail-based, decided at round_close per round:
//   * slow      -- latency >= the configured threshold, or, in auto mode
//                  (slow_threshold_ns == 0), >= the shard's rolling p99
//                  (refreshed from its round-latency sketch, with a
//                  warm-up floor so early rounds don't all qualify);
//   * econ      -- the round tripped at least one sentinel violation
//                  (EconTelemetry::observe_round reports the count);
//   * error     -- the round was corrupted by shedding, its events were
//                  orphaned, or it was still open at drain.
// Everything else folds into per-phase summary sketches and becomes
// eviction fodder in the shard's fixed-capacity TraceRing (retained
// traces are pinned and survive wraparound).
//
// Exports, all post-drain: versioned "mcs.trace.v1" JSONL
// (write_trace_stream: header, one record per retained trace, a summary
// record with per-phase quantiles, and a sketch-exemplar record), and
// multi-lane Chrome Trace Event Format (write_trace_chrome: a producer
// lane plus one lane per shard, flow arrows linking a round's queue span
// to its worker timeline).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/latency_sketch.hpp"
#include "obs/round_trace.hpp"
#include "obs/wallclock.hpp"

namespace mcs::serve {

struct TracePlaneConfig {
  /// Time source; nullptr = the process steady clock.
  obs::MonotonicClock* clock = nullptr;
  /// Retained-trace capacity per shard (pinned-priority ring).
  std::size_t ring_capacity = 256;
  /// Span cap per trace; appends beyond it are counted, not stored.
  std::size_t max_spans = 96;
  /// Retain rounds with latency >= this. 0 = auto: track each shard's
  /// rolling p99 round latency and use that as the threshold.
  std::uint64_t slow_threshold_ns = 0;
  /// Sketch-exemplar floor: buckets at or above this latency remember
  /// the trace id of their worst round.
  std::uint64_t exemplar_threshold_ns = 1'000'000;  // 1 ms
};

/// Aggregated view of one phase across all shards (cumulative sketch).
struct TracePhaseSummary {
  obs::TracePhase phase{obs::TracePhase::kQueueWait};
  obs::LatencySketchSnapshot sketch;
};

/// Whole-run totals for the end-of-run summary line and the JSONL
/// summary record.
struct TraceSummary {
  std::int64_t rounds_traced{0};     ///< round_open seen (trace started)
  std::int64_t rounds_completed{0};  ///< sealed via round_close
  std::int64_t retained{0};          ///< pinned into the rings
  std::int64_t retained_slow{0};
  std::int64_t retained_econ{0};
  std::int64_t retained_error{0};
  std::int64_t dropped{0};           ///< folded into summaries only
  std::int64_t retained_evicted{0};  ///< pinned traces lost to wraparound
  std::int64_t spans_truncated{0};   ///< spans beyond the per-trace cap
  /// Effective slow threshold (max over shards in auto mode; ~0 when the
  /// auto sampler has not warmed up yet).
  std::uint64_t slow_threshold_ns{0};
  std::array<TracePhaseSummary, obs::kTracePhaseCount> phases;
};

class TracePlane {
 public:
  explicit TracePlane(TracePlaneConfig config = {});
  TracePlane(const TracePlane&) = delete;
  TracePlane& operator=(const TracePlane&) = delete;

  [[nodiscard]] const TracePlaneConfig& config() const { return config_; }

  /// Binds to one engine run: sizes the per-shard lanes and restarts
  /// uptime at now. Called by the engine constructor; discards any
  /// previous run's traces.
  void attach(int shards);

  [[nodiscard]] int shards() const { return static_cast<int>(lanes_.size()); }

  /// Uptime timestamp (ns since attach) from the injected clock.
  [[nodiscard]] std::uint64_t now_ns();

  // Engine hooks. Each shard's timeline state is owned by that shard's
  // worker thread (on_event..on_worker_exit run only there); cross-thread
  // visibility is limited to the relaxed-atomic counters and sketches.

  /// Every dequeued event: folds queue wait and client-side ingest lag
  /// into the shard's phase sketches.
  void on_event(int shard, std::uint64_t queue_wait_ns,
                std::uint64_t client_lag_ns);
  /// round_open processing began: opens the trace with its ingest span
  /// ([enqueue - lag, enqueue], producer side) and queue span
  /// ([enqueue, begin]).
  void on_round_open(int shard, std::int64_t round, std::uint64_t enqueue_ns,
                     std::uint64_t begin_ns, std::uint64_t client_lag_ns);
  /// One slot_tick allocation step of an open round.
  void on_slot_tick(int shard, std::int64_t round, std::int32_t slot,
                    std::uint64_t begin_ns, std::uint64_t end_ns);
  /// round_close: seals the trace (payment span [close_begin, settled],
  /// audit span [settled, done] when the econ plane ran, terminal
  /// round_close marker at done) and runs the tail sampler.
  /// `econ_violations` is the sentinel's verdict for this round.
  void on_round_complete(int shard, std::int64_t round,
                         std::uint64_t close_begin_ns,
                         std::uint64_t settled_ns, std::uint64_t done_ns,
                         std::int64_t econ_violations);
  /// Shedding punched a hole in the round's event sequence (kReject):
  /// seals whatever timeline exists as corrupted, always retained.
  void on_round_corrupted(int shard, std::int64_t round, std::uint64_t at_ns);
  /// Event for a round whose open was shed: records a stub trace
  /// (sealed as orphaned at worker exit), always retained.
  void on_orphaned_event(int shard, std::int64_t round, std::uint64_t at_ns);
  /// Worker drained: seals every still-open trace as abandoned
  /// (orphan stubs keep their status), always retained.
  void on_worker_exit(int shard, std::uint64_t at_ns);

  /// Whole-run totals + merged per-phase sketches. Safe any time
  /// (counters and sketches are atomic), but per-phase counts are only
  /// settled after drain.
  [[nodiscard]] TraceSummary summary() const;

  /// Retained traces across all shards, sorted by round id. Reads the
  /// worker-owned rings: call only after the engine drained.
  [[nodiscard]] std::vector<obs::RoundTrace> retained() const;

  [[nodiscard]] const obs::SketchExemplars& exemplars() const {
    return exemplars_;
  }

 private:
  /// One shard's lane. Timeline state (open, orphans, ring, auto
  /// threshold) is worker-owned; the atomics and sketches below the
  /// fence are the cross-thread summary surface.
  struct Lane {
    explicit Lane(const TracePlaneConfig& config)
        : ring(config.ring_capacity) {}

    // -- worker-owned ------------------------------------------------
    std::unordered_map<std::int64_t, obs::RoundTrace> open;
    std::unordered_set<std::int64_t> orphan_rounds;  ///< stubs already made
    obs::TraceRing ring;
    /// Auto-mode threshold, refreshed from the round-close sketch.
    std::uint64_t auto_threshold_ns{~0ULL};
    std::int64_t closes_since_refresh{0};

    // -- shared (relaxed atomics / concurrent sketches) --------------
    std::atomic<std::int64_t> rounds_traced{0};
    std::atomic<std::int64_t> rounds_completed{0};
    std::atomic<std::int64_t> retained{0};
    std::atomic<std::int64_t> retained_slow{0};
    std::atomic<std::int64_t> retained_econ{0};
    std::atomic<std::int64_t> retained_error{0};
    std::atomic<std::int64_t> dropped{0};
    std::atomic<std::int64_t> retained_evicted{0};
    std::atomic<std::int64_t> spans_truncated{0};
    std::atomic<std::uint64_t> effective_threshold_ns{~0ULL};
    std::array<obs::LatencySketch, obs::kTracePhaseCount> phase_sketch;
  };

  /// Tail sampler + ring push of one sealed trace (worker thread).
  void seal(Lane& lane, obs::RoundTrace trace, unsigned extra_reasons);

  TracePlaneConfig config_;
  obs::MonotonicClock* clock_;
  std::uint64_t start_ns_{0};
  std::vector<std::unique_ptr<Lane>> lanes_;
  obs::SketchExemplars exemplars_;
};

/// The full "mcs.trace.v1" JSONL stream: header line, one "trace" record
/// per retained trace (sorted by round id), one "summary" record, one
/// "exemplars" record. Deterministic under a FakeClock.
void write_trace_stream(std::ostream& os, const TracePlane& plane);

/// Multi-lane Chrome Trace Event Format of the retained traces: lane
/// "producer" carries ingest + queue spans, one lane per shard carries
/// the worker timeline, flow arrows (id = round) link the two.
void write_trace_chrome(std::ostream& os, const TracePlane& plane);

}  // namespace mcs::serve
