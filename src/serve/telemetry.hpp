// Live operational telemetry of the serving engine -- the wall-clock plane.
//
// The engine's deterministic plane (ServeStats + the merged
// MetricsRegistry counters) is bit-identical across shard counts and runs,
// and bench-diff gates it exactly. This file is the other plane: wall-clock
// latency and throughput observed *while serving*, which is inherently
// nondeterministic and therefore strictly quarantined -- nothing recorded
// here ever touches a MetricsRegistry counter or histogram, and turning it
// on must not change a single deterministic counter (pinned by
// serve_telemetry_test).
//
// Wiring: the engine calls the on_* hooks (a few relaxed atomics each)
// when a LiveTelemetry is installed in its ServeConfig; a StatsPublisher
// thread periodically calls take_snapshot(), which rolls one window per
// shard (obs::RollingWindowAggregator), classifies shard and engine health
// (obs::classify_health), and emits one JSONL line of schema
// "mcs.serve_stats.v1" (write_serve_snapshot) and/or a Prometheus text
// rendering (render_live_prometheus, via the existing exporter). Time
// comes from an injectable obs::MonotonicClock, so tests drive the whole
// plane with a FakeClock and golden the snapshots byte for byte.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/latency_sketch.hpp"
#include "obs/rolling_window.hpp"
#include "obs/wallclock.hpp"

namespace mcs::serve {

struct LiveTelemetryConfig {
  /// Time source; nullptr = the process steady clock.
  obs::MonotonicClock* clock = nullptr;
  /// Rolling windows retained per shard (health dwell looks at the tail).
  std::size_t window_capacity = 64;
  obs::HealthConfig health;
};

/// One shard's share of a snapshot window.
struct ShardWindow {
  int shard{0};
  obs::HealthState state{obs::HealthState::kHealthy};
  obs::WindowStats window;
};

/// One published snapshot: the per-shard windows plus their engine-wide
/// aggregate. `window` is a monotone index; all times are uptime-relative
/// (nanoseconds since attach), so fake-clock runs are reproducible.
struct ServeSnapshot {
  std::int64_t window{0};
  std::uint64_t at_ns{0};  ///< window end, relative to attach
  obs::HealthState state{obs::HealthState::kHealthy};  ///< worst shard
  obs::WindowStats total;  ///< sums/merges across shards
  std::vector<ShardWindow> shards;
};

/// Whole-run totals for the end-of-run summary line.
struct LiveSummary {
  std::uint64_t uptime_ns{0};
  std::int64_t submitted{0};
  std::int64_t processed{0};
  std::int64_t rejected{0};
  std::int64_t rounds_closed{0};
  std::int64_t queue_high_watermark{0};
  obs::LatencySketchSnapshot queue_wait;     ///< cumulative, all shards
  obs::LatencySketchSnapshot round_latency;  ///< cumulative, all shards

  [[nodiscard]] double events_per_sec() const {
    return uptime_ns == 0 ? 0.0
                          : static_cast<double>(processed) /
                                (static_cast<double>(uptime_ns) / 1e9);
  }
};

class LiveTelemetry {
 public:
  explicit LiveTelemetry(LiveTelemetryConfig config = {});
  LiveTelemetry(const LiveTelemetry&) = delete;
  LiveTelemetry& operator=(const LiveTelemetry&) = delete;

  /// Binds to one engine run: sizes the per-shard slots, records the queue
  /// capacity (for health classification), and restarts uptime at now.
  /// Called by the engine constructor; discards any previous run's data.
  void attach(int shards, std::int64_t queue_capacity);

  [[nodiscard]] int shards() const { return static_cast<int>(slots_.size()); }

  /// Uptime timestamp (ns since attach) from the injected clock.
  [[nodiscard]] std::uint64_t now_ns();

  // Engine hooks. Thread-safe, wait-free (relaxed atomics only). The
  // count-taking overloads serve the batched handoff path: one call per
  // batch, counted as `count` events at the batch's depth-after (the exact
  // instantaneous occupancy -- batch pushes are all-or-nothing).
  void on_submit(int shard, std::int64_t depth_after);
  void on_submit(int shard, std::int64_t count, std::int64_t depth_after);
  void on_reject(int shard);
  void on_reject(int shard, std::int64_t count);
  void on_process(int shard, std::uint64_t queue_wait_ns,
                  std::int64_t depth_after);
  void on_round_close(int shard, std::uint64_t round_latency_ns);

  /// Rolls one window per shard and aggregates. Serialized internally, so
  /// the publisher thread and a final end-of-run call cannot interleave.
  [[nodiscard]] ServeSnapshot take_snapshot();

  /// Whole-run cumulative totals (merged across shards).
  [[nodiscard]] LiveSummary summary();

 private:
  /// Written by producers (on_submit/on_reject) and the shard worker
  /// (on_process/on_round_close); read by the snapshot thread.
  struct ShardSlot {
    std::atomic<std::int64_t> submitted{0};
    std::atomic<std::int64_t> processed{0};
    std::atomic<std::int64_t> rejected{0};
    std::atomic<std::int64_t> rounds_closed{0};
    std::atomic<std::int64_t> depth{0};
    std::atomic<std::int64_t> window_watermark{0};  ///< reset per snapshot
    std::atomic<std::int64_t> high_watermark{0};
    obs::LatencySketch queue_wait;
    obs::LatencySketch round_latency;
  };

  [[nodiscard]] obs::LiveCumulative sample_shard(ShardSlot& slot,
                                                 std::uint64_t at_ns);

  LiveTelemetryConfig config_;
  obs::MonotonicClock* clock_;
  std::uint64_t start_ns_{0};
  std::int64_t queue_capacity_{0};
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  std::mutex snapshot_mutex_;  ///< guards aggregators_ + next_window_
  std::vector<obs::RollingWindowAggregator> aggregators_;
  std::int64_t next_window_{0};
};

/// One "mcs.serve_stats.v1" JSONL line (newline-terminated). Every line is
/// self-describing (carries the schema field); quantiles of an empty
/// window render as null.
void write_serve_snapshot(std::ostream& os, const ServeSnapshot& snapshot);

/// Prometheus text rendering of one snapshot via obs::write_prometheus
/// (gauges named serve.live.*; health states as their severity rank).
void render_live_prometheus(std::ostream& os, const ServeSnapshot& snapshot);

class EconTelemetry;  // serve/econ_telemetry.hpp

/// Background snapshot thread: every `period` it takes a snapshot and
/// appends one JSONL line to `os`. stop() (and the destructor) publishes
/// one final tail window so short runs still emit at least one line.
/// When an EconTelemetry and its stream are supplied, each tick publishes
/// the econ plane too ("mcs.serve_econ.v1" lines, same cadence).
class StatsPublisher {
 public:
  StatsPublisher(LiveTelemetry& live, std::ostream& os,
                 std::chrono::milliseconds period);
  StatsPublisher(LiveTelemetry& live, std::ostream& os,
                 std::chrono::milliseconds period, EconTelemetry* econ,
                 std::ostream* econ_os);
  ~StatsPublisher();
  StatsPublisher(const StatsPublisher&) = delete;
  StatsPublisher& operator=(const StatsPublisher&) = delete;

  /// Idempotent; joins the thread and writes the final snapshot.
  void stop();
  [[nodiscard]] std::int64_t snapshots_written() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  void publish();

  LiveTelemetry& live_;
  std::ostream& os_;
  std::chrono::milliseconds period_;
  EconTelemetry* econ_{nullptr};     ///< optional second plane (non-owning)
  std::ostream* econ_os_{nullptr};   ///< destination for econ snapshots
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_{false};
  bool stopped_{false};
  std::atomic<std::int64_t> written_{0};
  std::thread thread_;
};

}  // namespace mcs::serve
