// The sharded, event-driven streaming auction engine.
//
// Rounds are independent auctions, so the engine scales horizontally by
// hashing each event's round id onto one of N shards; every shard owns a
// bounded MPSC queue and one worker thread that drives the per-round
// RoundMachines to completion. Determinism: a round's events are consumed
// in submission order by exactly one worker, so the merged outcomes (and
// the merged per-shard work counters) are identical for any shard count --
// the same reduction identity the parallel simulator relies on.
//
// Backpressure is an explicit admission-control policy, chosen at
// construction:
//   * kBlock  -- submit() waits for queue space (lossless ingestion; the
//                producer absorbs the backpressure),
//   * kReject -- submit() returns kRejectedQueueFull immediately and the
//                event is dropped (the caller absorbs it; load shedding).
//
// Telemetry: when a MetricsRegistry is installed on the constructing
// thread, each worker records into its own shard registry and drain()
// folds them into the installed one via the deterministic registry merge.
// That is the deterministic plane. Installing a LiveTelemetry in the
// config additionally turns on the wall-clock plane (serve/telemetry.hpp):
// submit->process queue waits, round open->close latencies, queue-depth
// watermarks and reject rates, recorded per shard into latency sketches a
// snapshot thread publishes while serving. The two planes never mix: live
// recording writes no registry counter, so the deterministic merge stays
// bit-identical whether live telemetry is on or off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "auction/online_greedy.hpp"
#include "obs/metrics.hpp"
#include "serve/event.hpp"
#include "serve/round_machine.hpp"

namespace mcs::serve {

class LiveTelemetry;
class EconTelemetry;
class TracePlane;

struct ServeConfig {
  /// Worker shards; rounds are hashed across them.
  int shards = 1;
  /// Bounded depth of each shard's event queue.
  std::size_t queue_capacity = 1024;

  /// The admission policy also fixes how workers treat broken round
  /// streams: under kBlock nothing is ever shed, so a hole in a round's
  /// event sequence is a malformed stream and fails the run; under kReject
  /// holes are the expected cost of shedding, so orphaned events are
  /// dropped and the affected round is abandoned, both counted in stats.
  enum class Admission {
    kBlock,   ///< submit() blocks until the shard queue has space
    kReject,  ///< submit() fails fast with kRejectedQueueFull
  };
  Admission admission = Admission::kBlock;

  /// Mechanism knobs applied to every round (reserve, profitability, ...).
  auction::OnlineGreedyConfig greedy;

  /// Optional wall-clock plane (non-owning; must outlive the engine). The
  /// engine attaches it at construction and records queue waits, round
  /// latencies, and watermarks into it while serving.
  LiveTelemetry* live = nullptr;

  /// Optional economic plane (non-owning; must outlive the engine). When
  /// set, round machines run in capture mode and every closed round is
  /// handed to the plane's sentinel (serve/econ_telemetry.hpp). Apart from
  /// the deliberate `econ.violations` counter this leaves the
  /// deterministic plane untouched.
  EconTelemetry* econ = nullptr;

  /// Optional causal tracing plane (non-owning; must outlive the engine).
  /// When set, every round gets a bounded span timeline and the
  /// tail-based sampler decides at round_close what to retain
  /// (serve/trace_plane.hpp). Same quarantine discipline as `live`: no
  /// registry counter is ever written, so the deterministic merge is
  /// bit-identical trace-on vs trace-off.
  TracePlane* trace = nullptr;

  /// Throws InvalidArgumentError when out of domain.
  void validate() const;
};

/// Admission verdict of one submit() call.
enum class SubmitStatus {
  kAccepted,          ///< enqueued on its shard
  kRejectedQueueFull, ///< kReject policy and the shard queue was full
  kRejectedStopped,   ///< engine already draining / shut down
};

[[nodiscard]] std::string_view to_string(SubmitStatus status);

/// Aggregated across all shards; available after drain().
struct ServeStats {
  std::int64_t submitted{0};             ///< events accepted by submit()
  std::int64_t rejected_backpressure{0}; ///< kRejectedQueueFull verdicts
  std::int64_t processed{0};             ///< events consumed by workers
  std::int64_t rounds_completed{0};
  std::int64_t rounds_abandoned{0};  ///< open at shutdown, never closed
  /// kReject only: events whose round was never opened (its round_open was
  /// shed) -- dropped, not fatal.
  std::int64_t orphaned_events{0};
  /// kReject only: rounds dropped mid-flight because shedding punched a
  /// hole in their event sequence (e.g. a lost slot_tick).
  std::int64_t rounds_corrupted{0};
  std::int64_t tasks_announced{0};
  std::int64_t bids_admitted{0};
  std::int64_t bids_rejected_reserve{0};
  /// Highest queue depth any shard reached (max-merged at drain). The
  /// value itself is scheduling-dependent; only the merge is deterministic.
  std::int64_t queue_high_watermark{0};
  Money total_paid;
};

/// Deterministic shard assignment of a round (splitmix64 of the round id,
/// independent of std::hash so streams replay identically everywhere).
[[nodiscard]] int shard_of_round(std::int64_t round, int shards);

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig config);
  /// Joins the workers; pending events are still drained, but outcomes and
  /// stats of an un-drained engine are discarded.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  [[nodiscard]] const ServeConfig& config() const { return config_; }

  /// Routes one event to its shard. Thread-safe (any number of producers).
  SubmitStatus submit(const ServeEvent& event);

  /// Graceful shutdown: closes the queues, waits for every queued event to
  /// be processed, joins the workers, merges shard telemetry into the
  /// registry installed at construction, and aggregates stats. Idempotent.
  /// Throws InvalidArgumentError when any shard hit a stream error (first
  /// error by shard index).
  void drain();

  /// Completed rounds, sorted by round id. Requires drain(); moves out.
  [[nodiscard]] std::vector<RoundOutcome> take_outcomes();

  /// Aggregated stats. Requires drain().
  [[nodiscard]] const ServeStats& stats() const;

 private:
  /// One queued event plus its wall-clock enqueue stamp (0 when both the
  /// live and trace planes are off -- the clock is never read then).
  struct Queued {
    ServeEvent event;
    std::uint64_t enqueue_ns{0};
  };

  /// One popped event with the queue state the consumer observed.
  struct Popped {
    ServeEvent event;
    std::uint64_t enqueue_ns{0};
    std::int64_t depth_left{0};  ///< items remaining after this pop
  };

  /// Bounded MPSC queue: many producers (submit), one consumer (worker).
  /// Push results report the depth after the push (-1 = not enqueued) so
  /// the live plane can track watermarks without re-locking.
  class BoundedQueue {
   public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    /// Blocks until space; -1 when the queue was closed meanwhile.
    std::int64_t push_block(const Queued& item);
    /// Fails fast: -1 when full or closed.
    std::int64_t try_push(const Queued& item);
    /// Blocks for the next event; nullopt when closed and empty.
    std::optional<Popped> pop();
    void close();
    /// Highest depth ever reached (the deterministic-plane stat merged
    /// into ServeStats at drain).
    [[nodiscard]] std::int64_t high_watermark() const;

   private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<Queued> items_;
    std::size_t capacity_;
    std::int64_t high_watermark_{0};
    bool closed_{false};
  };

  struct Shard {
    Shard(int index, std::size_t queue_capacity)
        : index(index), queue(queue_capacity) {}

    int index;
    BoundedQueue queue;
    std::thread worker;
    obs::MetricsRegistry registry;  ///< used only when telemetry is on
    std::vector<RoundOutcome> outcomes;
    ServeStats stats;    ///< worker-local; folded into totals at drain
    std::string error;   ///< first stream error, empty = clean
  };

  void worker_main(Shard& shard);
  void process_event(Shard& shard,
                     std::unordered_map<std::int64_t, RoundMachine>& machines,
                     std::unordered_map<std::int64_t, std::uint64_t>& open_ns,
                     const ServeEvent& event, std::uint64_t now_ns,
                     std::uint64_t enqueue_ns);
  /// Wall-clock uptime stamp for the optional planes (live preferred so
  /// both planes share one timebase per run); 0 when both are off.
  std::uint64_t stamp_ns();

  ServeConfig config_;
  obs::MetricsRegistry* parent_registry_;  ///< merge target; may be null
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<bool> stopping_{false};
  bool drained_{false};
  ServeStats totals_;
};

}  // namespace mcs::serve
