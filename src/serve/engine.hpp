// The sharded, event-driven streaming auction engine.
//
// Rounds are independent auctions, so the engine scales horizontally by
// hashing each event's round id onto one of N shards; every shard owns a
// bounded MPSC queue and one worker thread that drives the per-round
// RoundMachines to completion. Determinism: a round's events are consumed
// in submission order by exactly one worker, so the merged outcomes (and
// the merged per-shard work counters) are identical for any shard count --
// the same reduction identity the parallel simulator relies on.
//
// Backpressure is an explicit admission-control policy, chosen at
// construction:
//   * kBlock  -- submit() waits for queue space (lossless ingestion; the
//                producer absorbs the backpressure),
//   * kReject -- submit() returns kRejectedQueueFull immediately and the
//                event is dropped (the caller absorbs it; load shedding).
//
// Telemetry: when a MetricsRegistry is installed on the constructing
// thread, each worker records into its own shard registry and drain()
// folds them into the installed one via the deterministic registry merge.
// That is the deterministic plane. Installing a LiveTelemetry in the
// config additionally turns on the wall-clock plane (serve/telemetry.hpp):
// submit->process queue waits, round open->close latencies, queue-depth
// watermarks and reject rates, recorded per shard into latency sketches a
// snapshot thread publishes while serving. The two planes never mix: live
// recording writes no registry counter, so the deterministic merge stays
// bit-identical whether live telemetry is on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "auction/online_greedy.hpp"
#include "obs/metrics.hpp"
#include "serve/event.hpp"
#include "serve/queue.hpp"
#include "serve/round_machine.hpp"

namespace mcs::serve {

class LiveTelemetry;
class EconTelemetry;
class TracePlane;

struct ServeConfig {
  /// Worker shards; rounds are hashed across them.
  int shards = 1;
  /// Bounded depth of each shard's event queue.
  std::size_t queue_capacity = 1024;
  /// Producer-side batch size used by ShardBatcher (and the flush
  /// threshold of each of its per-shard buffers). 1 keeps the historical
  /// event-at-a-time handoff; larger values amortize the queue lock over
  /// the batch. Must stay <= queue_capacity (an oversized batch could
  /// never fit). Batching changes only handoff granularity -- event order
  /// per round, outcomes, and deterministic counters are unaffected.
  std::size_t batch_size = 1;

  /// The admission policy also fixes how workers treat broken round
  /// streams: under kBlock nothing is ever shed, so a hole in a round's
  /// event sequence is a malformed stream and fails the run; under kReject
  /// holes are the expected cost of shedding, so orphaned events are
  /// dropped and the affected round is abandoned, both counted in stats.
  enum class Admission {
    kBlock,   ///< submit() blocks until the shard queue has space
    kReject,  ///< submit() fails fast with kRejectedQueueFull
  };
  Admission admission = Admission::kBlock;

  /// Mechanism knobs applied to every round (reserve, profitability, ...).
  auction::OnlineGreedyConfig greedy;

  /// Optional wall-clock plane (non-owning; must outlive the engine). The
  /// engine attaches it at construction and records queue waits, round
  /// latencies, and watermarks into it while serving.
  LiveTelemetry* live = nullptr;

  /// Optional economic plane (non-owning; must outlive the engine). When
  /// set, round machines run in capture mode and every closed round is
  /// handed to the plane's sentinel (serve/econ_telemetry.hpp). Apart from
  /// the deliberate `econ.violations` counter this leaves the
  /// deterministic plane untouched.
  EconTelemetry* econ = nullptr;

  /// Optional causal tracing plane (non-owning; must outlive the engine).
  /// When set, every round gets a bounded span timeline and the
  /// tail-based sampler decides at round_close what to retain
  /// (serve/trace_plane.hpp). Same quarantine discipline as `live`: no
  /// registry counter is ever written, so the deterministic merge is
  /// bit-identical trace-on vs trace-off.
  TracePlane* trace = nullptr;

  /// Throws InvalidArgumentError when out of domain.
  void validate() const;
};

/// Admission verdict of one submit() call.
enum class SubmitStatus {
  kAccepted,          ///< enqueued on its shard
  kRejectedQueueFull, ///< kReject policy and the shard queue was full
  kRejectedStopped,   ///< engine already draining / shut down
};

[[nodiscard]] std::string_view to_string(SubmitStatus status);

/// Aggregated across all shards; available after drain().
struct ServeStats {
  std::int64_t submitted{0};             ///< events accepted by submit()
  std::int64_t rejected_backpressure{0}; ///< kRejectedQueueFull verdicts
  std::int64_t processed{0};             ///< events consumed by workers
  std::int64_t rounds_completed{0};
  std::int64_t rounds_abandoned{0};  ///< open at shutdown, never closed
  /// kReject only: events whose round was never opened (its round_open was
  /// shed) -- dropped, not fatal.
  std::int64_t orphaned_events{0};
  /// kReject only: rounds dropped mid-flight because shedding punched a
  /// hole in their event sequence (e.g. a lost slot_tick).
  std::int64_t rounds_corrupted{0};
  std::int64_t tasks_announced{0};
  std::int64_t bids_admitted{0};
  std::int64_t bids_rejected_reserve{0};
  /// Highest queue depth any shard reached (max-merged at drain). The
  /// value itself is scheduling-dependent; only the merge is deterministic.
  std::int64_t queue_high_watermark{0};
  Money total_paid;
};

/// Deterministic shard assignment of a round (splitmix64 of the round id,
/// independent of std::hash so streams replay identically everywhere).
[[nodiscard]] int shard_of_round(std::int64_t round, int shards);

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig config);
  /// Joins the workers; pending events are still drained, but outcomes and
  /// stats of an un-drained engine are discarded.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  [[nodiscard]] const ServeConfig& config() const { return config_; }

  /// Routes one event to its shard. Thread-safe (any number of producers).
  SubmitStatus submit(const ServeEvent& event);

  /// Hands a batch of events to ONE shard under a single queue-lock
  /// acquisition. All events must hash to `shard_index` (checked); the
  /// batch is enqueued all-or-nothing: under kReject a full queue sheds
  /// the entire batch (counted per event), under kBlock the call waits
  /// until the whole batch fits. Thread-safe. Prefer ShardBatcher, which
  /// does the routing and flushing.
  SubmitStatus submit_batch(int shard_index, const ServeEvent* events,
                            std::size_t count);

  /// Graceful shutdown: closes the queues, waits for every queued event to
  /// be processed, joins the workers, merges shard telemetry into the
  /// registry installed at construction, and aggregates stats. Idempotent.
  /// Throws InvalidArgumentError when any shard hit a stream error (first
  /// error by shard index).
  void drain();

  /// Completed rounds, sorted by round id. Requires drain(); moves out.
  [[nodiscard]] std::vector<RoundOutcome> take_outcomes();

  /// Aggregated stats. Requires drain().
  [[nodiscard]] const ServeStats& stats() const;

 private:
  struct Shard {
    Shard(int shard_index, std::size_t queue_capacity)
        : index(shard_index), queue(queue_capacity) {}

    int index;
    EventRing queue;  ///< preallocated bounded ring; see serve/queue.hpp
    std::thread worker;
    obs::MetricsRegistry registry;  ///< used only when telemetry is on
    std::vector<RoundOutcome> outcomes;
    ServeStats stats;    ///< worker-local; folded into totals at drain
    std::string error;   ///< first stream error, empty = clean
  };

  void worker_main(Shard& shard);
  void process_event(Shard& shard,
                     std::unordered_map<std::int64_t, RoundMachine>& machines,
                     std::unordered_map<std::int64_t, std::uint64_t>& open_ns,
                     const ServeEvent& event, std::uint64_t now_ns,
                     std::uint64_t enqueue_ns);
  /// Wall-clock uptime stamp for the optional planes (live preferred so
  /// both planes share one timebase per run); 0 when both are off.
  std::uint64_t stamp_ns();

  ServeConfig config_;
  obs::MetricsRegistry* parent_registry_;  ///< merge target; may be null
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<bool> stopping_{false};
  bool drained_{false};
  ServeStats totals_;
};

/// Producer-side batching front of submit_batch(): one ShardBatcher per
/// producer thread (NOT thread-safe itself; the engine handoff underneath
/// is). Events accumulate in a per-shard buffer and are flushed to their
/// shard's queue when the buffer reaches the engine's configured
/// batch_size -- so the queue lock is taken once per batch instead of once
/// per event. Events of one round keep their submission order (they share
/// a shard and a buffer), which preserves the engine's determinism
/// guarantee.
///
/// Under kReject admission the shed granularity becomes the batch: a full
/// queue drops the whole flushed buffer (every event counted rejected).
/// flush() pushes out every partial buffer; the destructor flushes too,
/// swallowing the verdict -- call flush() explicitly when you need it.
class ShardBatcher {
 public:
  explicit ShardBatcher(ServeEngine& engine);
  ~ShardBatcher();

  ShardBatcher(const ShardBatcher&) = delete;
  ShardBatcher& operator=(const ShardBatcher&) = delete;

  /// Buffers one event; flushes its shard's buffer when full. Returns
  /// kAccepted when merely buffered, otherwise the flush verdict.
  SubmitStatus add(const ServeEvent& event);

  /// Flushes every non-empty buffer (in shard order). Returns kAccepted
  /// only if every flush was accepted, else the first failure's verdict.
  SubmitStatus flush();

  /// Events currently buffered and not yet handed to the engine.
  [[nodiscard]] std::int64_t buffered() const;

  /// Exact per-event accounting across all flushes so far: events the
  /// engine admitted, and events lost to non-accepted flushes (shed or
  /// stopped -- whole batches under the all-or-nothing handoff).
  [[nodiscard]] std::int64_t accepted_events() const { return accepted_; }
  [[nodiscard]] std::int64_t rejected_events() const { return rejected_; }

 private:
  SubmitStatus flush_shard(std::size_t shard);

  ServeEngine& engine_;
  std::size_t batch_size_;
  std::vector<std::vector<ServeEvent>> buffers_;  ///< one per shard
  std::int64_t accepted_{0};
  std::int64_t rejected_{0};
};

}  // namespace mcs::serve
