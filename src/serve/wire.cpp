#include "serve/wire.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace mcs::serve {

namespace {

[[noreturn]] void bad_frame(const std::string& what) {
  throw InvalidArgumentError(std::string(kWireSchema) + " frame: " + what);
}

// ---------------------------------------------------- little-endian fields
// Explicit byte shifts instead of memcpy: identical bytes on every host
// endianness, and the compiler folds them to single moves on LE targets.

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((u >> (8 * i)) & 0xFF));
  }
}

std::uint16_t get_u16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::int32_t get_i32(const char* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

std::int64_t get_i64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t u = 0;
  for (int i = 7; i >= 0; --i) u = (u << 8) | b[i];
  return static_cast<std::int64_t>(u);
}

// -------------------------------------------------------------- frame ABI

enum : std::uint8_t {
  kKindRoundOpen = 0,
  kKindTaskArrived = 1,
  kKindBidSubmitted = 2,
  kKindSlotTick = 3,
  kKindRoundClose = 4,
};

// Exact payload sizes (u8 kind + fields); the decoder requires equality.
constexpr std::size_t kRoundOpenBytes = 1 + 8 + 4 + 8;
constexpr std::size_t kTaskArrivedBytes = 1 + 8 + 4 + 4 + 1;
constexpr std::size_t kTaskArrivedValueBytes = kTaskArrivedBytes + 8;
constexpr std::size_t kBidSubmittedBytes = 1 + 8 + 4 + 4 + 4 + 8;
constexpr std::size_t kSlotTickBytes = 1 + 8 + 4;
constexpr std::size_t kRoundCloseBytes = 1 + 8;

/// Shared Money envelope check (the JSONL side enforces the same bound
/// through Money::parse).
Money money_field(std::int64_t micros, std::string_view field) {
  if (micros > Money::max().micros() || micros < (-Money::max()).micros()) {
    bad_frame("field '" + std::string(field) +
              "' outside the Money envelope");
  }
  return Money::from_micros(micros);
}

std::int64_t round_field(std::int64_t round) {
  if (round < 0 || round > kMaxServeRound) bad_frame("round out of domain");
  return round;
}

}  // namespace

void append_wire_header(std::string& out) {
  out.append(kWireMagic, sizeof kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, 0);  // flags, must be zero in v1
}

void append_wire_frame(std::string& out, const ServeEvent& event) {
  std::size_t payload = 0;
  std::uint8_t kind = 0;
  switch (event.kind) {
    case ServeEventKind::kRoundOpen:
      payload = kRoundOpenBytes;
      kind = kKindRoundOpen;
      break;
    case ServeEventKind::kTaskArrived:
      payload = event.task_value ? kTaskArrivedValueBytes : kTaskArrivedBytes;
      kind = kKindTaskArrived;
      break;
    case ServeEventKind::kBidSubmitted:
      payload = kBidSubmittedBytes;
      kind = kKindBidSubmitted;
      break;
    case ServeEventKind::kSlotTick:
      payload = kSlotTickBytes;
      kind = kKindSlotTick;
      break;
    case ServeEventKind::kRoundClose:
      payload = kRoundCloseBytes;
      kind = kKindRoundClose;
      break;
  }
  out.reserve(out.size() + 4 + payload);
  put_u32(out, static_cast<std::uint32_t>(payload));
  out.push_back(static_cast<char>(kind));
  put_i64(out, event.round);
  switch (event.kind) {
    case ServeEventKind::kRoundOpen:
      put_i32(out, event.num_slots);
      put_i64(out, event.round_value.micros());
      break;
    case ServeEventKind::kTaskArrived:
      put_i32(out, event.slot.value());
      put_i32(out, event.task.value());
      out.push_back(event.task_value ? '\1' : '\0');
      if (event.task_value) put_i64(out, event.task_value->micros());
      break;
    case ServeEventKind::kBidSubmitted:
      put_i32(out, event.agent.value());
      put_i32(out, event.window.begin().value());
      put_i32(out, event.window.end().value());
      put_i64(out, event.claimed_cost.micros());
      break;
    case ServeEventKind::kSlotTick:
      put_i32(out, event.slot.value());
      break;
    case ServeEventKind::kRoundClose:
      break;
  }
}

std::string encode_wire_frame(const ServeEvent& event) {
  std::string out;
  append_wire_frame(out, event);
  return out;
}

std::optional<std::size_t> decode_wire_header(std::string_view bytes) {
  const std::size_t check = std::min(bytes.size(), sizeof kWireMagic);
  if (bytes.compare(0, check, kWireMagic, check) != 0) {
    bad_frame("bad stream magic (not an mcs.serve.b1 stream)");
  }
  if (bytes.size() < kWireHeaderBytes) return std::nullopt;
  const std::uint16_t version = get_u16(bytes.data() + 4);
  if (version != kWireVersion) {
    bad_frame("unsupported wire version " + std::to_string(version));
  }
  if (get_u16(bytes.data() + 6) != 0) bad_frame("nonzero header flags");
  return kWireHeaderBytes;
}

std::optional<DecodedFrame> decode_wire_frame(std::string_view bytes) {
  if (bytes.size() < 4) return std::nullopt;
  const std::uint32_t length = get_u32(bytes.data());
  if (length < 1 || length > kMaxWireFrameBytes) {
    bad_frame("implausible frame length " + std::to_string(length));
  }
  if (bytes.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;  // incomplete: feed more bytes
  }
  const char* p = bytes.data() + 4;
  const auto kind = static_cast<std::uint8_t>(p[0]);
  const auto expect_length = [&](std::size_t want) {
    if (length != want) {
      bad_frame("frame length " + std::to_string(length) +
                " does not match its kind's layout");
    }
  };

  DecodedFrame decoded;
  decoded.consumed = 4 + static_cast<std::size_t>(length);
  switch (kind) {
    case kKindRoundOpen: {
      expect_length(kRoundOpenBytes);
      const std::int64_t round = round_field(get_i64(p + 1));
      const std::int32_t slots = get_i32(p + 9);
      if (slots < 1) bad_frame("slots out of domain");
      decoded.event =
          round_open(round, slots, money_field(get_i64(p + 13), "value"));
      return decoded;
    }
    case kKindTaskArrived: {
      if (length != kTaskArrivedBytes && length != kTaskArrivedValueBytes) {
        bad_frame("frame length " + std::to_string(length) +
                  " does not match its kind's layout");
      }
      const std::int64_t round = round_field(get_i64(p + 1));
      const std::int32_t slot = get_i32(p + 9);
      const std::int32_t task = get_i32(p + 13);
      if (slot < 1) bad_frame("slot out of domain");
      if (task < 0) bad_frame("task out of domain");
      const char has_value = p[17];
      if (has_value != '\0' && has_value != '\1') {
        bad_frame("invalid has_value flag");
      }
      if ((has_value == '\1') != (length == kTaskArrivedValueBytes)) {
        bad_frame("has_value flag contradicts the frame length");
      }
      std::optional<Money> value;
      if (has_value == '\1') value = money_field(get_i64(p + 18), "value");
      decoded.event = task_arrived(round, Slot{slot}, TaskId{task}, value);
      return decoded;
    }
    case kKindBidSubmitted: {
      expect_length(kBidSubmittedBytes);
      const std::int64_t round = round_field(get_i64(p + 1));
      const std::int32_t agent = get_i32(p + 9);
      const std::int32_t from = get_i32(p + 13);
      const std::int32_t to = get_i32(p + 17);
      if (agent < 0) bad_frame("agent out of domain");
      if (from < 1) bad_frame("bid window begins before slot 1");
      if (to < from) bad_frame("bid window end precedes begin");
      const Money cost = money_field(get_i64(p + 21), "cost");
      if (cost.is_negative()) bad_frame("negative claimed cost");
      decoded.event =
          bid_submitted(round, PhoneId{agent},
                        model::Bid{SlotInterval::of(from, to), cost});
      return decoded;
    }
    case kKindSlotTick: {
      expect_length(kSlotTickBytes);
      const std::int64_t round = round_field(get_i64(p + 1));
      const std::int32_t slot = get_i32(p + 9);
      if (slot < 1) bad_frame("slot out of domain");
      decoded.event = slot_tick(round, Slot{slot});
      return decoded;
    }
    case kKindRoundClose: {
      expect_length(kRoundCloseBytes);
      decoded.event = round_close(round_field(get_i64(p + 1)));
      return decoded;
    }
    default:
      bad_frame("unknown event kind " + std::to_string(kind));
  }
}

std::int64_t WireDecoder::feed(
    std::string_view bytes,
    const std::function<void(const ServeEvent&)>& sink) {
  if (poisoned_) bad_frame("decoder already failed on this stream");
  std::int64_t events = 0;
  // Fast path: decode directly out of the caller's chunk; only the
  // partial tail is ever copied into the carry buffer.
  std::string_view view = bytes;
  if (!carry_.empty()) {
    carry_.append(bytes);
    view = carry_;
  }
  std::size_t consumed = 0;
  try {
    while (consumed < view.size()) {
      const std::string_view rest = view.substr(consumed);
      if (!header_done_) {
        const std::optional<std::size_t> header = decode_wire_header(rest);
        if (!header) break;  // incomplete header prefix
        consumed += *header;
        header_done_ = true;
        continue;
      }
      const std::optional<DecodedFrame> frame = decode_wire_frame(rest);
      if (!frame) break;  // incomplete frame prefix
      consumed += frame->consumed;
      ++events;
      ++decoded_;
      sink(frame->event);
    }
  } catch (...) {
    poisoned_ = true;
    carry_.clear();
    throw;
  }
  if (view.data() == carry_.data()) {
    carry_.erase(0, consumed);
  } else if (consumed < view.size()) {
    carry_.assign(view.substr(consumed));
  }
  return events;
}

// ------------------------------------------------------ stream transcoding

std::string_view to_string(WireFormat format) {
  switch (format) {
    case WireFormat::kJsonl:
      return "jsonl";
    case WireFormat::kBinary:
      return "binary";
  }
  return "unknown";
}

WireFormat detect_stream_format(std::istream& is) {
  const std::streampos pos = is.tellg();
  if (pos == std::streampos(-1)) {
    // Unseekable source: a single peeked byte still separates the formats
    // (a JSONL stream begins with '{' or whitespace, never 'M').
    return is.peek() == 'M' ? WireFormat::kBinary : WireFormat::kJsonl;
  }
  char magic[sizeof kWireMagic] = {};
  is.read(magic, sizeof magic);
  const bool binary =
      is.gcount() == sizeof magic &&
      std::string_view(magic, sizeof magic) ==
          std::string_view(kWireMagic, sizeof kWireMagic);
  is.clear();
  is.seekg(pos);
  return binary ? WireFormat::kBinary : WireFormat::kJsonl;
}

std::int64_t read_serve_stream(
    std::istream& is, const std::function<void(const ServeEvent&)>& sink) {
  std::int64_t events = 0;
  if (detect_stream_format(is) == WireFormat::kBinary) {
    WireDecoder decoder;
    char chunk[1 << 16];
    std::uint64_t offset = 0;
    while (is.read(chunk, sizeof chunk) || is.gcount() > 0) {
      const auto got = static_cast<std::size_t>(is.gcount());
      try {
        events += decoder.feed(std::string_view(chunk, got), sink);
      } catch (const Error& e) {
        throw InvalidArgumentError("binary stream (chunk at byte " +
                                   std::to_string(offset) + "): " + e.what());
      }
      offset += got;
    }
    if (!decoder.idle() || !decoder.header_seen()) {
      throw InvalidArgumentError(
          "binary stream: truncated (ends mid-frame or without a header)");
    }
    return events;
  }
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::optional<ServeEvent> event;
    try {
      event = decode_serve_line(line);
    } catch (const Error& e) {
      throw InvalidArgumentError("line " + std::to_string(line_number) +
                                 ": " + e.what());
    }
    if (!event) continue;  // header line
    ++events;
    sink(*event);
  }
  return events;
}

std::int64_t transcode_serve_stream(std::istream& is, std::ostream& os,
                                    WireFormat to) {
  std::string buffer;
  if (to == WireFormat::kBinary) append_wire_header(buffer);
  if (to == WireFormat::kJsonl) write_stream_header(os);
  const std::int64_t events =
      read_serve_stream(is, [&](const ServeEvent& event) {
        if (to == WireFormat::kBinary) {
          append_wire_frame(buffer, event);
          if (buffer.size() >= (1 << 16)) {
            os.write(buffer.data(),
                     static_cast<std::streamsize>(buffer.size()));
            buffer.clear();
          }
        } else {
          write_serve_event(os, event);
        }
      });
  if (!buffer.empty()) {
    os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
  return events;
}

}  // namespace mcs::serve
