#include "serve/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/assert.hpp"
#include "io/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/econ_telemetry.hpp"

namespace mcs::serve {

// ---------------------------------------------------------- LiveTelemetry

LiveTelemetry::LiveTelemetry(LiveTelemetryConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &obs::steady_clock()) {}

void LiveTelemetry::attach(int shards, std::int64_t queue_capacity) {
  MCS_EXPECTS(shards >= 1, "live telemetry requires >= 1 shard");
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  start_ns_ = clock_->now_ns();
  queue_capacity_ = queue_capacity;
  slots_.clear();
  aggregators_.clear();
  next_window_ = 0;
  for (int i = 0; i < shards; ++i) {
    slots_.push_back(std::make_unique<ShardSlot>());
    aggregators_.emplace_back(0, config_.window_capacity);
  }
}

std::uint64_t LiveTelemetry::now_ns() {
  const std::uint64_t now = clock_->now_ns();
  return now >= start_ns_ ? now - start_ns_ : 0;
}

void LiveTelemetry::on_submit(int shard, std::int64_t depth_after) {
  on_submit(shard, 1, depth_after);
}

void LiveTelemetry::on_submit(int shard, std::int64_t count,
                              std::int64_t depth_after) {
  ShardSlot& slot = *slots_[static_cast<std::size_t>(shard)];
  slot.submitted.fetch_add(count, std::memory_order_relaxed);
  slot.depth.store(depth_after, std::memory_order_relaxed);
  std::int64_t seen = slot.window_watermark.load(std::memory_order_relaxed);
  while (depth_after > seen &&
         !slot.window_watermark.compare_exchange_weak(
             seen, depth_after, std::memory_order_relaxed)) {
  }
  seen = slot.high_watermark.load(std::memory_order_relaxed);
  while (depth_after > seen &&
         !slot.high_watermark.compare_exchange_weak(
             seen, depth_after, std::memory_order_relaxed)) {
  }
}

void LiveTelemetry::on_reject(int shard) { on_reject(shard, 1); }

void LiveTelemetry::on_reject(int shard, std::int64_t count) {
  slots_[static_cast<std::size_t>(shard)]->rejected.fetch_add(
      count, std::memory_order_relaxed);
}

void LiveTelemetry::on_process(int shard, std::uint64_t queue_wait_ns,
                               std::int64_t depth_after) {
  ShardSlot& slot = *slots_[static_cast<std::size_t>(shard)];
  slot.processed.fetch_add(1, std::memory_order_relaxed);
  slot.depth.store(depth_after, std::memory_order_relaxed);
  slot.queue_wait.record_ns(queue_wait_ns);
}

void LiveTelemetry::on_round_close(int shard,
                                   std::uint64_t round_latency_ns) {
  ShardSlot& slot = *slots_[static_cast<std::size_t>(shard)];
  slot.rounds_closed.fetch_add(1, std::memory_order_relaxed);
  slot.round_latency.record_ns(round_latency_ns);
}

obs::LiveCumulative LiveTelemetry::sample_shard(ShardSlot& slot,
                                                std::uint64_t at_ns) {
  obs::LiveCumulative sample;
  sample.at_ns = at_ns;
  sample.submitted = slot.submitted.load(std::memory_order_relaxed);
  sample.processed = slot.processed.load(std::memory_order_relaxed);
  sample.rejected = slot.rejected.load(std::memory_order_relaxed);
  sample.rounds_closed = slot.rounds_closed.load(std::memory_order_relaxed);
  sample.queue_depth = slot.depth.load(std::memory_order_relaxed);
  // The window watermark resets to the current depth, not zero: a queue
  // that stays backlogged across a whole window must still show it.
  sample.window_watermark =
      slot.window_watermark.exchange(sample.queue_depth,
                                     std::memory_order_relaxed);
  sample.queue_high_watermark =
      slot.high_watermark.load(std::memory_order_relaxed);
  sample.queue_wait = slot.queue_wait.snapshot();
  sample.round_latency = slot.round_latency.snapshot();
  return sample;
}

ServeSnapshot LiveTelemetry::take_snapshot() {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  const std::uint64_t now = now_ns();
  ServeSnapshot snapshot;
  snapshot.window = next_window_++;
  snapshot.at_ns = now;
  snapshot.total.index = snapshot.window;
  snapshot.total.end_ns = now;
  snapshot.total.begin_ns = now;
  snapshot.shards.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ShardWindow shard;
    shard.shard = static_cast<int>(i);
    shard.window = aggregators_[i].roll(sample_shard(*slots_[i], now));
    shard.state = obs::classify_health(aggregators_[i].windows(),
                                       queue_capacity_, config_.health);
    snapshot.state = obs::worse(snapshot.state, shard.state);
    snapshot.total.begin_ns =
        std::min(snapshot.total.begin_ns, shard.window.begin_ns);
    snapshot.total.submitted += shard.window.submitted;
    snapshot.total.processed += shard.window.processed;
    snapshot.total.rejected += shard.window.rejected;
    snapshot.total.rounds_closed += shard.window.rounds_closed;
    snapshot.total.queue_depth += shard.window.queue_depth;
    snapshot.total.queue_watermark =
        std::max(snapshot.total.queue_watermark, shard.window.queue_watermark);
    snapshot.total.queue_wait.merge(shard.window.queue_wait);
    snapshot.total.round_latency.merge(shard.window.round_latency);
    snapshot.shards.push_back(std::move(shard));
  }
  const double seconds = snapshot.total.seconds();
  if (seconds > 0.0) {
    snapshot.total.events_per_sec =
        static_cast<double>(snapshot.total.processed) / seconds;
    snapshot.total.rounds_per_sec =
        static_cast<double>(snapshot.total.rounds_closed) / seconds;
  }
  const std::int64_t offered =
      snapshot.total.submitted + snapshot.total.rejected;
  if (offered > 0) {
    snapshot.total.reject_rate =
        static_cast<double>(snapshot.total.rejected) /
        static_cast<double>(offered);
  }
  return snapshot;
}

LiveSummary LiveTelemetry::summary() {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  LiveSummary total;
  total.uptime_ns = now_ns();
  for (const std::unique_ptr<ShardSlot>& slot : slots_) {
    total.submitted += slot->submitted.load(std::memory_order_relaxed);
    total.processed += slot->processed.load(std::memory_order_relaxed);
    total.rejected += slot->rejected.load(std::memory_order_relaxed);
    total.rounds_closed +=
        slot->rounds_closed.load(std::memory_order_relaxed);
    total.queue_high_watermark =
        std::max(total.queue_high_watermark,
                 slot->high_watermark.load(std::memory_order_relaxed));
    total.queue_wait.merge(slot->queue_wait.snapshot());
    total.round_latency.merge(slot->round_latency.snapshot());
  }
  return total;
}

// -------------------------------------------------------- JSONL rendering

namespace {

std::int64_t to_ms(std::uint64_t ns) {
  return static_cast<std::int64_t>(ns / 1'000'000ULL);
}

/// Quantile triple of one window sketch as *_us fields (null when empty).
void write_latency_fields(io::JsonWriter& json, std::string_view prefix,
                          const obs::LatencySketchSnapshot& sketch) {
  const auto field = [&](std::string_view suffix, double value) {
    json.field(std::string(prefix) + std::string(suffix), value);
  };
  field("_p50_us", sketch.quantile_us(0.50));
  field("_p95_us", sketch.quantile_us(0.95));
  field("_p99_us", sketch.quantile_us(0.99));
  field("_max_us",
        sketch.empty() ? std::numeric_limits<double>::quiet_NaN()
                       : static_cast<double>(sketch.max_ns) / 1000.0);
}

}  // namespace

void write_serve_snapshot(std::ostream& os, const ServeSnapshot& snapshot) {
  {
    io::JsonWriter json(os);
    json.begin_object();
    json.field("schema", "mcs.serve_stats.v1");
    json.field("window", snapshot.window);
    json.field("at_ms", to_ms(snapshot.at_ns));
    json.field("span_ms",
               to_ms(snapshot.total.end_ns - snapshot.total.begin_ns));
    json.field("state", obs::to_string(snapshot.state));
    json.field("submitted", snapshot.total.submitted);
    json.field("processed", snapshot.total.processed);
    json.field("rejected", snapshot.total.rejected);
    json.field("reject_rate", snapshot.total.reject_rate);
    json.field("rounds_closed", snapshot.total.rounds_closed);
    json.field("events_per_sec", snapshot.total.events_per_sec);
    json.field("rounds_per_sec", snapshot.total.rounds_per_sec);
    write_latency_fields(json, "round_close", snapshot.total.round_latency);
    write_latency_fields(json, "queue_wait", snapshot.total.queue_wait);
    json.field("queue_depth", snapshot.total.queue_depth);
    json.field("queue_watermark", snapshot.total.queue_watermark);
    json.key("shards");
    json.begin_array();
    for (const ShardWindow& shard : snapshot.shards) {
      json.begin_object();
      json.field("shard", static_cast<std::int64_t>(shard.shard));
      json.field("state", obs::to_string(shard.state));
      json.field("processed", shard.window.processed);
      json.field("rejected", shard.window.rejected);
      json.field("events_per_sec", shard.window.events_per_sec);
      json.field("queue_depth", shard.window.queue_depth);
      json.field("queue_watermark", shard.window.queue_watermark);
      json.field("round_close_p99_us",
                 shard.window.round_latency.quantile_us(0.99));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  os << '\n';
}

// --------------------------------------------------- Prometheus rendering

void render_live_prometheus(std::ostream& os, const ServeSnapshot& snapshot) {
  obs::MetricsRegistry registry;
  const auto gauge = [&](const std::string& name, double value,
                         std::string_view help = {}) {
    if (std::isfinite(value)) registry.gauge(name, help).set(value);
  };
  gauge("serve.live.window", static_cast<double>(snapshot.window),
        "monotone snapshot window index");
  gauge("serve.live.state", static_cast<double>(snapshot.state),
        "health severity: 0 healthy, 1 saturated, 2 shedding, 3 stalled, "
        "4 degraded-economics");
  gauge("serve.live.events_per_sec", snapshot.total.events_per_sec,
        "events processed per second in the last window");
  gauge("serve.live.rounds_per_sec", snapshot.total.rounds_per_sec,
        "rounds closed per second in the last window");
  gauge("serve.live.reject_rate", snapshot.total.reject_rate,
        "fraction of offered events shed in the last window");
  gauge("serve.live.queue_depth",
        static_cast<double>(snapshot.total.queue_depth),
        "queued events across all shards at the window edge");
  gauge("serve.live.queue_watermark",
        static_cast<double>(snapshot.total.queue_watermark),
        "highest shard queue depth within the last window");
  gauge("serve.live.round_close_p50_us",
        snapshot.total.round_latency.quantile_us(0.50),
        "round open->close wall latency, window p50");
  gauge("serve.live.round_close_p99_us",
        snapshot.total.round_latency.quantile_us(0.99),
        "round open->close wall latency, window p99");
  gauge("serve.live.queue_wait_p99_us",
        snapshot.total.queue_wait.quantile_us(0.99),
        "submit->process queue wait, window p99");
  for (const ShardWindow& shard : snapshot.shards) {
    const std::string prefix =
        "serve.live.shard." + std::to_string(shard.shard) + ".";
    gauge(prefix + "state", static_cast<double>(shard.state));
    gauge(prefix + "queue_depth",
          static_cast<double>(shard.window.queue_depth));
    gauge(prefix + "queue_watermark",
          static_cast<double>(shard.window.queue_watermark));
    gauge(prefix + "events_per_sec", shard.window.events_per_sec);
  }
  obs::write_prometheus(os, registry);
}

// --------------------------------------------------------- StatsPublisher

StatsPublisher::StatsPublisher(LiveTelemetry& live, std::ostream& os,
                               std::chrono::milliseconds period)
    : StatsPublisher(live, os, period, nullptr, nullptr) {}

StatsPublisher::StatsPublisher(LiveTelemetry& live, std::ostream& os,
                               std::chrono::milliseconds period,
                               EconTelemetry* econ, std::ostream* econ_os)
    : live_(live), os_(os), period_(period), econ_(econ), econ_os_(econ_os) {
  MCS_EXPECTS(period_.count() > 0, "stats period must be positive");
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
      if (cv_.wait_for(lock, period_, [this] { return stopping_; })) break;
      lock.unlock();
      publish();
      lock.lock();
    }
  });
}

StatsPublisher::~StatsPublisher() { stop(); }

void StatsPublisher::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  publish();  // tail window, so even sub-period runs emit one snapshot
}

void StatsPublisher::publish() {
  write_serve_snapshot(os_, live_.take_snapshot());
  os_.flush();
  if (econ_ != nullptr && econ_os_ != nullptr) {
    write_econ_snapshot(*econ_os_, econ_->take_snapshot());
    econ_os_->flush();
  }
  written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mcs::serve
