#include "serve/event.hpp"

#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "io/json.hpp"

namespace mcs::serve {

namespace {

[[noreturn]] void bad_event(const std::string& what) {
  throw InvalidArgumentError("mcs.serve.v1 event: " + what);
}

/// Every slot/task/agent field is an int32 in memory (Slot::rep_type and
/// friends); decoding wider values would silently truncate, which for an
/// untrusted stream is indistinguishable from corruption. Reject instead.
constexpr std::int64_t kMaxNarrowField =
    std::numeric_limits<std::int32_t>::max();

/// Required integral member with an inclusive domain check. Values outside
/// [min_value, max_value] are rejected -- never narrowed or wrapped.
std::int64_t require_int(const io::JsonValue& line, std::string_view key,
                         std::int64_t min_value,
                         std::int64_t max_value = kMaxNarrowField) {
  const io::JsonValue* member = line.find(key);
  if (member == nullptr) bad_event("missing field '" + std::string(key) + "'");
  const std::int64_t value = member->as_int();
  if (value < min_value || value > max_value) {
    bad_event("field '" + std::string(key) + "' out of domain");
  }
  return value;
}

/// Required Money member (decimal string, Money::parse format).
Money require_money(const io::JsonValue& line, std::string_view key) {
  const io::JsonValue* member = line.find(key);
  if (member == nullptr) bad_event("missing field '" + std::string(key) + "'");
  return Money::parse(member->as_string());
}

Slot::rep_type to_slot_rep(std::int64_t value) {
  return static_cast<Slot::rep_type>(value);
}

}  // namespace

std::string_view to_string(ServeEventKind kind) {
  switch (kind) {
    case ServeEventKind::kRoundOpen:
      return "round_open";
    case ServeEventKind::kTaskArrived:
      return "task_arrived";
    case ServeEventKind::kBidSubmitted:
      return "bid_submitted";
    case ServeEventKind::kSlotTick:
      return "slot_tick";
    case ServeEventKind::kRoundClose:
      return "round_close";
  }
  return "unknown";
}

ServeEvent round_open(std::int64_t round, Slot::rep_type num_slots,
                      Money value) {
  ServeEvent event;
  event.kind = ServeEventKind::kRoundOpen;
  event.round = round;
  event.num_slots = num_slots;
  event.round_value = value;
  return event;
}

ServeEvent task_arrived(std::int64_t round, Slot slot, TaskId task,
                        std::optional<Money> value) {
  ServeEvent event;
  event.kind = ServeEventKind::kTaskArrived;
  event.round = round;
  event.slot = slot;
  event.task = task;
  event.task_value = value;
  return event;
}

ServeEvent bid_submitted(std::int64_t round, PhoneId agent,
                         const model::Bid& bid) {
  ServeEvent event;
  event.kind = ServeEventKind::kBidSubmitted;
  event.round = round;
  event.slot = bid.window.begin();  // phones bid when they join
  event.agent = agent;
  event.window = bid.window;
  event.claimed_cost = bid.claimed_cost;
  return event;
}

ServeEvent slot_tick(std::int64_t round, Slot slot) {
  ServeEvent event;
  event.kind = ServeEventKind::kSlotTick;
  event.round = round;
  event.slot = slot;
  return event;
}

ServeEvent round_close(std::int64_t round) {
  ServeEvent event;
  event.kind = ServeEventKind::kRoundClose;
  event.round = round;
  return event;
}

model::Bid bid_of(const ServeEvent& event) {
  MCS_EXPECTS(event.kind == ServeEventKind::kBidSubmitted,
              "bid_of requires a bid_submitted event");
  return model::Bid{event.window, event.claimed_cost};
}

void write_stream_header(std::ostream& os) {
  io::JsonWriter writer(os);
  writer.begin_object().field("schema", kServeSchema).end_object();
  os << '\n';
}

void write_serve_event(std::ostream& os, const ServeEvent& event) {
  io::JsonWriter writer(os);
  writer.begin_object();
  writer.field("ev", to_string(event.kind));
  writer.field("round", event.round);
  switch (event.kind) {
    case ServeEventKind::kRoundOpen:
      writer.field("slots", static_cast<std::int64_t>(event.num_slots));
      writer.field("value", event.round_value.to_string());
      break;
    case ServeEventKind::kTaskArrived:
      writer.field("slot", static_cast<std::int64_t>(event.slot.value()));
      writer.field("task", static_cast<std::int64_t>(event.task.value()));
      if (event.task_value) {
        writer.field("value", event.task_value->to_string());
      }
      break;
    case ServeEventKind::kBidSubmitted:
      writer.field("agent", static_cast<std::int64_t>(event.agent.value()));
      writer.field("from",
                   static_cast<std::int64_t>(event.window.begin().value()));
      writer.field("to", static_cast<std::int64_t>(event.window.end().value()));
      writer.field("cost", event.claimed_cost.to_string());
      break;
    case ServeEventKind::kSlotTick:
      writer.field("slot", static_cast<std::int64_t>(event.slot.value()));
      break;
    case ServeEventKind::kRoundClose:
      break;
  }
  writer.end_object();
  os << '\n';
}

std::string encode_serve_event(const ServeEvent& event) {
  std::ostringstream os;
  write_serve_event(os, event);
  std::string line = std::move(os).str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

ServeEvent decode_serve_event(const io::JsonValue& line) {
  if (!line.is_object()) bad_event("line is not a JSON object");
  const io::JsonValue* discriminator = line.find("ev");
  if (discriminator == nullptr) bad_event("missing field 'ev'");
  const std::string& ev = discriminator->as_string();
  const std::int64_t round = require_int(line, "round", 0, kMaxServeRound);

  if (ev == "round_open") {
    const std::int64_t slots = require_int(line, "slots", 1);
    return round_open(round, to_slot_rep(slots), require_money(line, "value"));
  }
  if (ev == "task_arrived") {
    const Slot slot{to_slot_rep(require_int(line, "slot", 1))};
    const TaskId task{
        static_cast<TaskId::rep_type>(require_int(line, "task", 0))};
    std::optional<Money> value;
    if (line.find("value") != nullptr) value = require_money(line, "value");
    return task_arrived(round, slot, task, value);
  }
  if (ev == "bid_submitted") {
    const PhoneId agent{
        static_cast<PhoneId::rep_type>(require_int(line, "agent", 0))};
    const std::int64_t from = require_int(line, "from", 1);
    const std::int64_t to = require_int(line, "to", 1);
    if (to < from) bad_event("bid window end precedes begin");
    const Money cost = require_money(line, "cost");
    if (cost.is_negative()) bad_event("negative claimed cost");
    return bid_submitted(
        round, agent,
        model::Bid{SlotInterval::of(to_slot_rep(from), to_slot_rep(to)), cost});
  }
  if (ev == "slot_tick") {
    return slot_tick(round, Slot{to_slot_rep(require_int(line, "slot", 1))});
  }
  if (ev == "round_close") {
    return round_close(round);
  }
  bad_event("unknown event kind '" + ev + "'");
}

std::optional<ServeEvent> decode_serve_line(std::string_view line) {
  const io::JsonValue parsed = io::parse_json(line);
  if (const io::JsonValue* schema = parsed.find("schema")) {
    if (schema->as_string() != kServeSchema) {
      bad_event("unsupported schema '" + schema->as_string() + "'");
    }
    return std::nullopt;  // header line
  }
  return decode_serve_event(parsed);
}

}  // namespace mcs::serve
