#include "serve/econ_telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "analysis/metrics.hpp"
#include "analysis/rationality.hpp"
#include "auction/counterfactual.hpp"
#include "auction/critical_value.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/second_price.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "io/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mcs::serve {

namespace {

/// Same mixer the engine's shard router uses; duplicated locally so the
/// probe sampler cannot drift if the router ever changes.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool econ_probe_sampled(std::int64_t round, std::int64_t probe_every,
                        std::uint64_t probe_seed) {
  if (probe_every <= 0) return false;
  const std::uint64_t mixed =
      splitmix64(static_cast<std::uint64_t>(round) ^ probe_seed);
  return mixed % static_cast<std::uint64_t>(probe_every) == 0;
}

// ----------------------------------------------------------- EconTelemetry

EconTelemetry::EconTelemetry(EconTelemetryConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &obs::steady_clock()) {}

void EconTelemetry::attach(int shards) {
  MCS_EXPECTS(shards >= 1, "econ telemetry requires >= 1 shard");
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  start_ns_ = clock_->now_ns();
  slots_.clear();
  aggregators_.clear();
  next_window_ = 0;
  for (int i = 0; i < shards; ++i) {
    slots_.push_back(std::make_unique<ShardSlot>());
    aggregators_.emplace_back(0, config_.window_capacity);
  }
}

std::uint64_t EconTelemetry::now_ns() {
  const std::uint64_t now = clock_->now_ns();
  return now >= start_ns_ ? now - start_ns_ : 0;
}

void EconTelemetry::report_violation(int shard, std::int64_t round,
                                     std::string_view kind, std::int32_t phone,
                                     Money observed, Money expected) {
  slots_[static_cast<std::size_t>(shard)]->violations.fetch_add(
      1, std::memory_order_relaxed);
  // The one sanctioned registry write of this plane: bumped only on an
  // actual violation, and the probe sampler is round-seeded, so the
  // counter is a deterministic function of the stream.
  obs::count("econ.violations");
  if (config_.events != nullptr) {
    obs::Event event("econ_violation");
    event.phone = phone;
    event.with("round", round)
        .with("shard", static_cast<std::int64_t>(shard))
        .with("kind", std::string(kind))
        .with("observed", observed)
        .with("expected", expected);
    config_.events->append(std::move(event));
  }
}

std::int64_t EconTelemetry::observe_round(int shard, RoundMachine& machine,
                                          const RoundOutcome& result) {
  ShardSlot& slot = *slots_[static_cast<std::size_t>(shard)];
  if (!machine.capture_complete()) {
    slot.rounds_skipped.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  CapturedRound captured = machine.take_captured();

  struct Violation {
    std::string kind;
    std::int32_t phone;
    Money observed;
    Money expected;
  };
  std::vector<Violation> violations;
  analysis::RoundMetrics metrics;
  bool have_metrics = false;
  bool sampled = false;
  std::int64_t probe_checks = 0;
  std::int64_t second_price_micros = 0;
  bool have_second_price = false;
  std::int64_t vcg_micros = 0;
  bool have_vcg = false;

  {
    // Quarantine: reference mechanisms, counterfactual probes, and metric
    // derivation are econ-plane bookkeeping, not decisions of the run.
    // Nothing inside this scope may touch the deterministic counter plane
    // or the primary event trail.
    const obs::ScopedRegistry quarantine(nullptr);
    const obs::ScopedEventLog suppress(nullptr);

    try {
      captured.scenario.validate();
      model::validate_bids(captured.scenario, captured.bids);
    } catch (const Error&) {
      // Untrusted stream produced an unreconstructable round; skipped, not
      // a mechanism violation.
      slot.rounds_skipped.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }

    // Cheap exact invariants, every round. Non-throwing by design.
    for (const analysis::InvariantViolation& v :
         analysis::check_round_invariants(captured.scenario, captured.bids,
                                          result.outcome, result.total_paid)) {
      violations.push_back(Violation{std::string(analysis::to_string(v.kind)),
                                     v.phone.value(), v.observed, v.expected});
    }

    try {
      metrics = analysis::compute_metrics(captured.scenario, captured.bids,
                                          result.outcome);
      have_metrics = true;
    } catch (const Error&) {
      // Structurally broken outcome (e.g. allocation outside a reported
      // window): the invariant list above already carries what we know.
    }

    if (config_.second_price_reference) {
      try {
        const auction::SecondPriceConfig reference_config{
            auction::SecondPriceConfig::NoRunnerUp::kOwnBid, config_.greedy};
        const auction::SecondPriceBaseline reference(reference_config);
        second_price_micros =
            reference.run(captured.scenario, captured.bids)
                .total_payment()
                .micros();
        have_second_price = true;
      } catch (const Error&) {
      }
    }
    if (config_.vcg_max_phones > 0 && config_.vcg_max_tasks > 0 &&
        captured.scenario.phone_count() <= config_.vcg_max_phones &&
        captured.scenario.task_count() <= config_.vcg_max_tasks) {
      try {
        const auction::OfflineVcgMechanism vcg;
        vcg_micros = vcg.run(captured.scenario, captured.bids)
                         .total_payment()
                         .micros();
        have_vcg = true;
      } catch (const Error&) {
      }
    }

    sampled = econ_probe_sampled(result.round, config_.probe_every,
                                 config_.probe_seed);
    if (sampled) {
      try {
        const auction::CounterfactualEngine engine(
            captured.scenario, captured.bids, config_.greedy);
        for (const PhoneId winner : result.outcome.allocation.winners()) {
          const Money paid = result.outcome.payments[static_cast<std::size_t>(
              winner.value())];
          const auction::PaymentAudit audit =
              auction::audit_winner_payment(engine, winner, paid);
          ++probe_checks;
          if (audit.verdict == auction::PaymentAuditVerdict::kLosesAtClaim) {
            violations.push_back(
                Violation{"probe-loses-at-claim", winner.value(), paid,
                          captured.bids[static_cast<std::size_t>(
                                            winner.value())]
                              .claimed_cost});
          } else if (audit.verdict ==
                     auction::PaymentAuditVerdict::kPaymentNotCritical) {
            violations.push_back(Violation{"probe-payment-not-critical",
                                           winner.value(), paid,
                                           *audit.critical});
          }
        }
      } catch (const Error&) {
        // A probe that cannot even replay the round is a skip, not proof
        // of mispricing; the cheap invariants above still stand.
        sampled = false;
        probe_checks = 0;
      }
    }
  }

  // Outside the quarantine: violation accounting is the plane's one
  // deterministic side effect.
  for (const Violation& v : violations) {
    report_violation(shard, result.round, v.kind, v.phone, v.observed,
                     v.expected);
  }

  slot.rounds.fetch_add(1, std::memory_order_relaxed);
  if (sampled) {
    slot.probe_rounds.fetch_add(1, std::memory_order_relaxed);
    slot.probe_checks.fetch_add(probe_checks, std::memory_order_relaxed);
  }
  if (have_second_price) {
    slot.second_price_payment_micros.fetch_add(second_price_micros,
                                               std::memory_order_relaxed);
  }
  if (have_vcg) {
    slot.vcg_payment_micros.fetch_add(vcg_micros, std::memory_order_relaxed);
    slot.vcg_rounds.fetch_add(1, std::memory_order_relaxed);
  }
  if (have_metrics) {
    slot.tasks.fetch_add(metrics.tasks_total, std::memory_order_relaxed);
    slot.tasks_allocated.fetch_add(metrics.tasks_allocated,
                                   std::memory_order_relaxed);
    slot.winners.fetch_add(
        static_cast<std::int64_t>(result.outcome.allocation.winners().size()),
        std::memory_order_relaxed);
    slot.payment_micros.fetch_add(metrics.total_payment.micros(),
                                  std::memory_order_relaxed);
    slot.claimed_cost_micros.fetch_add(metrics.total_true_cost.micros(),
                                       std::memory_order_relaxed);
    slot.fairness.record_ns(
        obs::ratio_to_sketch_units(metrics.payment_fairness));
    slot.overpayment.record_ns(
        obs::ratio_to_sketch_units(metrics.overpayment_ratio));
  }
  return static_cast<std::int64_t>(violations.size());
}

obs::EconCumulative EconTelemetry::sample_shard(ShardSlot& slot,
                                                std::uint64_t at_ns) {
  obs::EconCumulative sample;
  sample.at_ns = at_ns;
  sample.rounds = slot.rounds.load(std::memory_order_relaxed);
  sample.rounds_skipped = slot.rounds_skipped.load(std::memory_order_relaxed);
  sample.tasks = slot.tasks.load(std::memory_order_relaxed);
  sample.tasks_allocated =
      slot.tasks_allocated.load(std::memory_order_relaxed);
  sample.winners = slot.winners.load(std::memory_order_relaxed);
  sample.payment_micros = slot.payment_micros.load(std::memory_order_relaxed);
  sample.claimed_cost_micros =
      slot.claimed_cost_micros.load(std::memory_order_relaxed);
  sample.second_price_payment_micros =
      slot.second_price_payment_micros.load(std::memory_order_relaxed);
  sample.vcg_payment_micros =
      slot.vcg_payment_micros.load(std::memory_order_relaxed);
  sample.vcg_rounds = slot.vcg_rounds.load(std::memory_order_relaxed);
  sample.probe_rounds = slot.probe_rounds.load(std::memory_order_relaxed);
  sample.probe_checks = slot.probe_checks.load(std::memory_order_relaxed);
  sample.violations = slot.violations.load(std::memory_order_relaxed);
  sample.fairness = slot.fairness.snapshot();
  sample.overpayment = slot.overpayment.snapshot();
  return sample;
}

EconSnapshot EconTelemetry::take_snapshot() {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  const std::uint64_t now = now_ns();
  EconSnapshot snapshot;
  snapshot.window = next_window_++;
  snapshot.at_ns = now;
  snapshot.cumulative.at_ns = now;
  snapshot.total.index = snapshot.window;
  snapshot.total.end_ns = now;
  snapshot.total.begin_ns = now;
  snapshot.shards.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const obs::EconCumulative sample = sample_shard(*slots_[i], now);
    snapshot.cumulative.rounds += sample.rounds;
    snapshot.cumulative.rounds_skipped += sample.rounds_skipped;
    snapshot.cumulative.tasks += sample.tasks;
    snapshot.cumulative.tasks_allocated += sample.tasks_allocated;
    snapshot.cumulative.winners += sample.winners;
    snapshot.cumulative.payment_micros += sample.payment_micros;
    snapshot.cumulative.claimed_cost_micros += sample.claimed_cost_micros;
    snapshot.cumulative.second_price_payment_micros +=
        sample.second_price_payment_micros;
    snapshot.cumulative.vcg_payment_micros += sample.vcg_payment_micros;
    snapshot.cumulative.vcg_rounds += sample.vcg_rounds;
    snapshot.cumulative.probe_rounds += sample.probe_rounds;
    snapshot.cumulative.probe_checks += sample.probe_checks;
    snapshot.cumulative.violations += sample.violations;
    snapshot.cumulative.fairness.merge(sample.fairness);
    snapshot.cumulative.overpayment.merge(sample.overpayment);

    EconShardWindow shard;
    shard.shard = static_cast<int>(i);
    shard.window = aggregators_[i].roll(sample);
    snapshot.total.begin_ns =
        std::min(snapshot.total.begin_ns, shard.window.begin_ns);
    snapshot.total.rounds += shard.window.rounds;
    snapshot.total.rounds_skipped += shard.window.rounds_skipped;
    snapshot.total.tasks += shard.window.tasks;
    snapshot.total.tasks_allocated += shard.window.tasks_allocated;
    snapshot.total.winners += shard.window.winners;
    snapshot.total.payment_micros += shard.window.payment_micros;
    snapshot.total.claimed_cost_micros += shard.window.claimed_cost_micros;
    snapshot.total.second_price_payment_micros +=
        shard.window.second_price_payment_micros;
    snapshot.total.vcg_payment_micros += shard.window.vcg_payment_micros;
    snapshot.total.vcg_rounds += shard.window.vcg_rounds;
    snapshot.total.probe_rounds += shard.window.probe_rounds;
    snapshot.total.probe_checks += shard.window.probe_checks;
    snapshot.total.violations += shard.window.violations;
    snapshot.total.fairness.merge(shard.window.fairness);
    snapshot.total.overpayment.merge(shard.window.overpayment);
    snapshot.shards.push_back(std::move(shard));
  }
  const double seconds = snapshot.total.seconds();
  if (seconds > 0.0) {
    snapshot.total.rounds_per_sec =
        static_cast<double>(snapshot.total.rounds) / seconds;
  }
  snapshot.total.coverage = obs::coverage_rate(snapshot.total.tasks_allocated,
                                               snapshot.total.tasks);
  snapshot.total.overpayment_ratio = obs::overpayment_ratio(
      Money::from_micros(snapshot.total.payment_micros),
      Money::from_micros(snapshot.total.claimed_cost_micros));
  snapshot.state = obs::classify_econ_health(snapshot.cumulative.violations);
  return snapshot;
}

std::int64_t EconTelemetry::violations() const {
  std::int64_t total = 0;
  for (const std::unique_ptr<ShardSlot>& slot : slots_) {
    total += slot->violations.load(std::memory_order_relaxed);
  }
  return total;
}

// -------------------------------------------------------- JSONL rendering

namespace {

std::int64_t to_ms(std::uint64_t ns) {
  return static_cast<std::int64_t>(ns / 1'000'000ULL);
}

/// Micro-ratio sketch quantile as a plain ratio field (null when empty).
void write_ratio_fields(io::JsonWriter& json, std::string_view prefix,
                        const obs::LatencySketchSnapshot& sketch) {
  const auto field = [&](std::string_view suffix, double units) {
    json.field(std::string(prefix) + std::string(suffix),
               obs::sketch_units_to_ratio(units));
  };
  field("_p50", sketch.quantile_ns(0.50));
  field("_p95", sketch.quantile_ns(0.95));
}

std::string micros_string(std::int64_t micros) {
  return Money::from_micros(micros).to_string();
}

}  // namespace

void write_econ_snapshot(std::ostream& os, const EconSnapshot& snapshot) {
  {
    io::JsonWriter json(os);
    json.begin_object();
    json.field("schema", "mcs.serve_econ.v1");
    json.field("window", snapshot.window);
    json.field("at_ms", to_ms(snapshot.at_ns));
    json.field("span_ms",
               to_ms(snapshot.total.end_ns - snapshot.total.begin_ns));
    json.field("econ_state", obs::to_string(snapshot.state));
    json.field("rounds", snapshot.total.rounds);
    json.field("rounds_skipped", snapshot.total.rounds_skipped);
    json.field("rounds_per_sec", snapshot.total.rounds_per_sec);
    json.field("tasks", snapshot.total.tasks);
    json.field("tasks_allocated", snapshot.total.tasks_allocated);
    json.field("coverage", snapshot.total.coverage);
    json.field("winners", snapshot.total.winners);
    json.field("payment", micros_string(snapshot.total.payment_micros));
    json.field("claimed_cost",
               micros_string(snapshot.total.claimed_cost_micros));
    json.field("overpayment_ratio", snapshot.total.overpayment_ratio);
    json.field("second_price_payment",
               micros_string(snapshot.total.second_price_payment_micros));
    json.field("vcg_payment",
               micros_string(snapshot.total.vcg_payment_micros));
    json.field("vcg_rounds", snapshot.total.vcg_rounds);
    write_ratio_fields(json, "fairness", snapshot.total.fairness);
    write_ratio_fields(json, "overpayment", snapshot.total.overpayment);
    json.field("probe_rounds", snapshot.total.probe_rounds);
    json.field("probe_checks", snapshot.total.probe_checks);
    json.field("violations", snapshot.total.violations);
    json.key("cumulative");
    json.begin_object();
    json.field("rounds", snapshot.cumulative.rounds);
    json.field("rounds_skipped", snapshot.cumulative.rounds_skipped);
    json.field("tasks", snapshot.cumulative.tasks);
    json.field("tasks_allocated", snapshot.cumulative.tasks_allocated);
    json.field("winners", snapshot.cumulative.winners);
    json.field("payment", micros_string(snapshot.cumulative.payment_micros));
    json.field("claimed_cost",
               micros_string(snapshot.cumulative.claimed_cost_micros));
    json.field(
        "second_price_payment",
        micros_string(snapshot.cumulative.second_price_payment_micros));
    json.field("vcg_payment",
               micros_string(snapshot.cumulative.vcg_payment_micros));
    json.field("vcg_rounds", snapshot.cumulative.vcg_rounds);
    json.field("probe_rounds", snapshot.cumulative.probe_rounds);
    json.field("probe_checks", snapshot.cumulative.probe_checks);
    json.field("violations", snapshot.cumulative.violations);
    json.end_object();
    json.key("shards");
    json.begin_array();
    for (const EconShardWindow& shard : snapshot.shards) {
      json.begin_object();
      json.field("shard", static_cast<std::int64_t>(shard.shard));
      json.field("rounds", shard.window.rounds);
      json.field("payment", micros_string(shard.window.payment_micros));
      json.field("violations", shard.window.violations);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  os << '\n';
}

// --------------------------------------------------- Prometheus rendering

void render_econ_prometheus(std::ostream& os, const EconSnapshot& snapshot) {
  obs::MetricsRegistry registry;
  const auto gauge = [&](const std::string& name, double value,
                         std::string_view help = {}) {
    if (std::isfinite(value)) registry.gauge(name, help).set(value);
  };
  gauge("serve.econ.window", static_cast<double>(snapshot.window),
        "monotone econ snapshot window index");
  gauge("serve.econ.state", static_cast<double>(snapshot.state),
        "econ health severity: 0 healthy, 4 degraded-economics");
  gauge("serve.econ.rounds_per_sec", snapshot.total.rounds_per_sec,
        "rounds audited per second in the last window");
  gauge("serve.econ.coverage", snapshot.total.coverage,
        "fraction of announced tasks allocated in the last window");
  gauge("serve.econ.overpayment_ratio", snapshot.total.overpayment_ratio,
        "window sigma: (payment - claimed cost) / claimed cost");
  gauge("serve.econ.payment",
        Money::from_micros(snapshot.total.payment_micros).to_double(),
        "payment disbursed in the last window (units)");
  gauge("serve.econ.second_price_payment",
        Money::from_micros(snapshot.total.second_price_payment_micros)
            .to_double(),
        "per-slot second-price reference payment for the window (units)");
  gauge("serve.econ.fairness_p50",
        obs::sketch_units_to_ratio(snapshot.total.fairness.quantile_ns(0.50)),
        "per-round Jain payment-fairness index, window p50");
  gauge("serve.econ.violations",
        static_cast<double>(snapshot.cumulative.violations),
        "sentinel violations observed since attach");
  gauge("serve.econ.probe_rounds",
        static_cast<double>(snapshot.cumulative.probe_rounds),
        "rounds deep-probed since attach");
  for (const EconShardWindow& shard : snapshot.shards) {
    const std::string prefix =
        "serve.econ.shard." + std::to_string(shard.shard) + ".";
    gauge(prefix + "rounds", static_cast<double>(shard.window.rounds));
    gauge(prefix + "violations",
          static_cast<double>(shard.window.violations));
  }
  obs::write_prometheus(os, registry);
}

}  // namespace mcs::serve
