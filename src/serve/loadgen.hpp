// Seeded load generator: turns model::workload draws into serve streams.
//
// Each round is an independent Table-I-style draw from
// model::generate_scenario, seeded per round so any round can be
// regenerated in isolation (the streaming/batch equivalence oracle relies
// on exactly that: rebuild round k's scenario, run the batch mechanism,
// and compare against what the engine produced). The round's scenario and
// truthful bids are then linearized into the canonical event order --
// round_open, then per slot {task_arrived*, bid_submitted*, slot_tick},
// then round_close -- which mirrors the protocol order the round driver
// enforces.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "model/scenario.hpp"
#include "model/workload.hpp"
#include "serve/event.hpp"

namespace mcs::serve {

struct LoadGenConfig {
  std::int64_t rounds = 4;
  std::uint64_t seed = 42;  ///< base seed; round k draws from (seed, k)
  model::WorkloadConfig workload;
};

/// Deterministically regenerates the scenario of one round.
[[nodiscard]] model::Scenario loadgen_scenario(const LoadGenConfig& config,
                                               std::int64_t round);

/// Linearizes one round (scenario + the bids actually submitted) into the
/// canonical event order described above.
[[nodiscard]] std::vector<ServeEvent> round_events(
    std::int64_t round, const model::Scenario& scenario,
    const model::BidProfile& bids);

/// Streams every event of every round, in round order, through `emit`.
/// Returns the number of events generated. `emit` returning false stops
/// generation early (e.g. a shedding engine that lost interest).
std::int64_t generate_events(
    const LoadGenConfig& config,
    const std::function<bool(const ServeEvent&)>& emit);

/// Writes the whole load as an mcs.serve.v1 JSONL stream (header line
/// first). Returns the number of events written (header excluded).
std::int64_t write_event_stream(std::ostream& os, const LoadGenConfig& config);

}  // namespace mcs::serve
