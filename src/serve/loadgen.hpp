// Seeded load generator: turns model::workload draws into serve streams.
//
// Each round is an independent Table-I-style draw from
// model::generate_scenario, seeded per round so any round can be
// regenerated in isolation (the streaming/batch equivalence oracle relies
// on exactly that: rebuild round k's scenario, run the batch mechanism,
// and compare against what the engine produced). The round's scenario and
// truthful bids are then linearized into the canonical event order --
// round_open, then per slot {task_arrived*, bid_submitted*, slot_tick},
// then round_close -- which mirrors the protocol order the round driver
// enforces.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "model/scenario.hpp"
#include "model/workload.hpp"
#include "obs/wallclock.hpp"
#include "serve/event.hpp"

namespace mcs::serve {

struct LoadGenConfig {
  std::int64_t rounds = 4;
  std::uint64_t seed = 42;  ///< base seed; round k draws from (seed, k)
  model::WorkloadConfig workload;
};

/// Deterministically regenerates the scenario of one round.
[[nodiscard]] model::Scenario loadgen_scenario(const LoadGenConfig& config,
                                               std::int64_t round);

/// Linearizes one round (scenario + the bids actually submitted) into the
/// canonical event order described above.
[[nodiscard]] std::vector<ServeEvent> round_events(
    std::int64_t round, const model::Scenario& scenario,
    const model::BidProfile& bids);

/// Streams every event of every round, in round order, through `emit`.
/// Returns the number of events generated. `emit` returning false stops
/// generation early (e.g. a shedding engine that lost interest).
std::int64_t generate_events(
    const LoadGenConfig& config,
    const std::function<bool(const ServeEvent&)>& emit);

/// Writes the whole load as an mcs.serve.v1 JSONL stream (header line
/// first). Returns the number of events written (header excluded).
std::int64_t write_event_stream(std::ostream& os, const LoadGenConfig& config);

/// Writes the whole load as an mcs.serve.b1 binary stream (stream header
/// first). Returns the number of frames written (header excluded).
std::int64_t write_wire_stream(std::ostream& os, const LoadGenConfig& config);

// --------------------------------------------------- open-loop pacing mode

/// Open-loop pacing: event k has the deterministic send deadline
/// t0 + k / target_eps, independent of how the consumer keeps up -- the
/// producer sleeps when ahead of schedule and NEVER slows down when the
/// engine lags (that is what makes overload inducible; a closed loop would
/// just throttle itself). When the producer itself falls behind schedule
/// (e.g. a kBlock engine exerting backpressure through submit), the lag is
/// accounted instead of silently absorbed.
struct PaceConfig {
  /// Target offered load, events per second. Must be > 0.
  double target_eps = 0.0;
  /// Time source; nullptr = the process steady clock. Tests inject a
  /// FakeClock (with a no-op sleeper) for a fully deterministic run.
  obs::MonotonicClock* clock = nullptr;
  /// Sleep hook; nullptr = std::this_thread::sleep_for.
  std::function<void(std::uint64_t ns)> sleep_ns;
};

struct PaceReport {
  std::int64_t offered{0};   ///< events handed to `submit`
  std::int64_t accepted{0};  ///< submit returned true
  std::int64_t shed{0};      ///< submit returned false
  /// Events sent more than one inter-event gap behind their deadline --
  /// the producer could not hold target_eps (backpressure or overload).
  std::int64_t late_events{0};
  std::uint64_t max_lag_ns{0};   ///< worst observed schedule lag
  std::uint64_t duration_ns{0};  ///< first deadline to last send
};

/// Streams the whole load through `submit` at the paced schedule.
/// `submit` reports whether the event was accepted (admission control
/// shedding returns false); either way the schedule marches on. Events
/// sent behind schedule carry their lag in ServeEvent::client_lag_ns, so
/// a downstream trace plane renders client-side lateness as its own
/// ingest span.
PaceReport run_paced_load(
    const LoadGenConfig& config, const PaceConfig& pace,
    const std::function<bool(const ServeEvent&)>& submit);

}  // namespace mcs::serve
