// Per-round state machine of the streaming engine.
//
// A RoundMachine owns one in-flight auction round: it is created by the
// round_open event and then fed that round's stream in order, translating
// events into platform::OnlinePlatform calls -- task_arrived becomes
// announce_task, bid_submitted becomes submit_bid, slot_tick becomes
// advance_slot. The machine accumulates the assignments and
// departure-slot payments the platform reports and materializes them as a
// batch-comparable auction::Outcome at round_close. Because OnlinePlatform
// is the same state machine the round driver drives, a replayed event
// stream reproduces the batch OnlineGreedyMechanism outcome byte for byte
// (the streaming/batch equivalence oracle pins this).
//
// The machine is strict about stream well-formedness (untrusted input):
// events must carry the clock's current slot, every slot must be ticked
// before round_close, agents may bid once, and ids must be dense.
// Violations throw InvalidArgumentError / ContractViolation; the engine
// surfaces them as stream errors.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/online_greedy.hpp"
#include "auction/outcome.hpp"
#include "common/money.hpp"
#include "platform/platform.hpp"
#include "serve/clock.hpp"
#include "serve/event.hpp"

namespace mcs::serve {

/// What one completed round produced.
struct RoundOutcome {
  std::int64_t round{0};
  auction::Outcome outcome;  ///< batch-comparable allocation + payments
  Money total_paid;
  std::int64_t tasks_announced{0};
  std::int64_t bids_admitted{0};
  std::int64_t bids_rejected{0};  ///< turned away by the platform reserve
  std::int64_t events_consumed{0};
};

class RoundMachine {
 public:
  /// Boots the round from its round_open event.
  RoundMachine(const ServeEvent& open, auction::OnlineGreedyConfig config);

  [[nodiscard]] std::int64_t round() const { return round_; }
  [[nodiscard]] bool done() const { return done_; }

  /// Consumes the next event of this round (kinds other than kRoundOpen).
  /// Returns true when the event was kRoundClose and the round completed.
  bool apply(const ServeEvent& event);

  /// The finished round's outcome; requires done(). Moves the result out.
  [[nodiscard]] RoundOutcome take_outcome();

 private:
  std::int64_t round_;
  VirtualClock clock_;
  platform::OnlinePlatform platform_;
  bool done_{false};

  std::vector<std::pair<TaskId, platform::AgentId>> assignments_;
  std::vector<std::pair<platform::AgentId, Money>> payments_;
  std::vector<bool> agent_bid_;  ///< index = agent id; true once it bid
  RoundOutcome outcome_;
};

}  // namespace mcs::serve
