// Per-round state machine of the streaming engine.
//
// A RoundMachine owns one in-flight auction round: it is created by the
// round_open event and then fed that round's stream in order, translating
// events into platform::OnlinePlatform calls -- task_arrived becomes
// announce_task, bid_submitted becomes submit_bid, slot_tick becomes
// advance_slot. The machine accumulates the assignments and
// departure-slot payments the platform reports and materializes them as a
// batch-comparable auction::Outcome at round_close. Because OnlinePlatform
// is the same state machine the round driver drives, a replayed event
// stream reproduces the batch OnlineGreedyMechanism outcome byte for byte
// (the streaming/batch equivalence oracle pins this).
//
// The machine is strict about stream well-formedness (untrusted input):
// events must carry the clock's current slot, every slot must be ticked
// before round_close, agents may bid once, and ids must be dense.
// Violations throw InvalidArgumentError / ContractViolation; the engine
// surfaces them as stream errors.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "auction/online_greedy.hpp"
#include "auction/outcome.hpp"
#include "common/money.hpp"
#include "model/scenario.hpp"
#include "platform/platform.hpp"
#include "serve/clock.hpp"
#include "serve/event.hpp"

namespace mcs::serve {

/// What one completed round produced.
struct RoundOutcome {
  std::int64_t round{0};
  auction::Outcome outcome;  ///< batch-comparable allocation + payments
  Money total_paid;
  std::int64_t tasks_announced{0};
  std::int64_t bids_admitted{0};
  std::int64_t bids_rejected{0};  ///< turned away by the platform reserve
  std::int64_t events_consumed{0};
};

/// Claimed-cost reconstruction of a completed round: the world as the
/// phones *reported* it. The live econ plane audits against this (the
/// engine never sees private costs), under the truthful interpretation
/// claimed == true that the paper's mechanism incentivizes.
struct CapturedRound {
  model::Scenario scenario;  ///< phones carry their reported window/cost
  model::BidProfile bids;    ///< equals scenario.truthful_bids()
};

class RoundMachine {
 public:
  /// Boots the round from its round_open event. With `capture` on, the
  /// machine additionally records tasks and bids so the closed round can
  /// be reconstructed as a (Scenario, BidProfile) pair for econ auditing.
  RoundMachine(const ServeEvent& open, auction::OnlineGreedyConfig config,
               bool capture = false);

  [[nodiscard]] std::int64_t round() const { return round_; }
  [[nodiscard]] bool done() const { return done_; }

  /// Consumes the next event of this round (kinds other than kRoundOpen).
  /// Returns true when the event was kRoundClose and the round completed.
  bool apply(const ServeEvent& event);

  /// The finished round's outcome; requires done(). Moves the result out.
  [[nodiscard]] RoundOutcome take_outcome();

  /// True when capture was on, the round is done, and every dense agent id
  /// actually bid (a stream may legally skip ids; such rounds cannot be
  /// reconstructed and the econ plane counts them as skipped).
  [[nodiscard]] bool capture_complete() const;

  /// The captured round; requires capture_complete(). Moves the data out.
  /// The returned scenario is *not* pre-validated -- callers audit
  /// untrusted streams and must catch validation errors themselves.
  [[nodiscard]] CapturedRound take_captured();

 private:
  std::int64_t round_;
  VirtualClock clock_;
  platform::OnlinePlatform platform_;
  bool done_{false};
  bool capture_{false};
  Slot::rep_type num_slots_{0};
  Money round_value_;

  std::vector<std::pair<TaskId, platform::AgentId>> assignments_;
  std::vector<std::pair<platform::AgentId, Money>> payments_;
  std::vector<bool> agent_bid_;  ///< index = agent id; true once it bid
  std::vector<model::Task> captured_tasks_;
  std::vector<std::optional<model::Bid>> captured_bids_;
  RoundOutcome outcome_;
};

}  // namespace mcs::serve
