// Streaming/batch equivalence oracle.
//
// The serving engine must not change the mechanism, only its delivery:
// for every completed round, the streamed outcome has to reproduce the
// batch auction::OnlineGreedyMechanism outcome on the regenerated scenario
// byte for byte -- same task->phone allocation, same exact Money payment
// per phone. This is the serving-path extension of the round-driver
// equivalence the platform tests pin, and both the CLI (`serve --verify`)
// and the test suite run it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "auction/online_greedy.hpp"
#include "serve/loadgen.hpp"
#include "serve/round_machine.hpp"

namespace mcs::serve {

struct VerifyReport {
  std::int64_t rounds_checked{0};
  std::int64_t rounds_diverged{0};
  std::string first_diff;  ///< human-readable description of the first one

  [[nodiscard]] bool clean() const { return rounds_diverged == 0; }
};

/// Compares one streamed outcome against the batch mechanism on the given
/// scenario/bids. Returns an empty string when identical, else a
/// description of the first divergence.
[[nodiscard]] std::string diff_against_batch(
    const model::Scenario& scenario, const model::BidProfile& bids,
    const RoundOutcome& streamed, const auction::OnlineGreedyConfig& config);

/// Verifies every outcome of a loadgen-driven run: regenerates each
/// round's scenario from (config.seed, round) and batch-compares.
[[nodiscard]] VerifyReport verify_against_batch(
    const LoadGenConfig& config, const std::vector<RoundOutcome>& outcomes,
    const auction::OnlineGreedyConfig& greedy);

}  // namespace mcs::serve
