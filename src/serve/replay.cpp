#include "serve/replay.hpp"

#include <istream>
#include <memory>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "serve/wire.hpp"

namespace mcs::serve {
namespace {

// Shared submission front for both wire formats: either straight
// engine.submit() with per-event accounting, or a ShardBatcher whose
// exact accepted/rejected event counts are folded in at finish().
class Feeder {
 public:
  Feeder(ServeEngine& engine, bool batch) : engine_(engine) {
    if (batch) batcher_ = std::make_unique<ShardBatcher>(engine);
  }

  // Returns false when the engine is shut down (fatal for a replay: the
  // caller owns the engine and drained it under us).
  [[nodiscard]] bool feed(const ServeEvent& event, ReplayStats& stats) {
    ++stats.events;
    if (batcher_) {
      return batcher_->add(event) != SubmitStatus::kRejectedStopped;
    }
    switch (engine_.submit(event)) {
      case SubmitStatus::kAccepted:
        ++stats.accepted;
        return true;
      case SubmitStatus::kRejectedQueueFull:
        ++stats.shed;
        return true;
      case SubmitStatus::kRejectedStopped:
        return false;
    }
    return false;  // unreachable
  }

  // Flushes the partial batches; false on a stopped engine. Batched
  // accounting lands here because only the batcher knows how many
  // events each all-or-nothing flush carried.
  [[nodiscard]] bool finish(ReplayStats& stats) {
    if (!batcher_) return true;
    const SubmitStatus verdict = batcher_->flush();
    stats.accepted += batcher_->accepted_events();
    stats.shed += batcher_->rejected_events();
    return verdict != SubmitStatus::kRejectedStopped;
  }

 private:
  ServeEngine& engine_;
  std::unique_ptr<ShardBatcher> batcher_;
};

[[noreturn]] void throw_stopped() {
  throw InvalidArgumentError(
      "serve replay: engine is shut down; cannot replay into it");
}

ReplayStats replay_jsonl(std::istream& is, Feeder& feeder) {
  ReplayStats stats;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++stats.lines;
    std::optional<ServeEvent> event;
    try {
      event = decode_serve_line(line);
    } catch (const Error& e) {
      throw InvalidArgumentError("line " + std::to_string(line_number) + ": " +
                                 e.what());
    }
    if (!event) continue;  // header line
    if (!feeder.feed(*event, stats)) throw_stopped();
  }
  if (!feeder.finish(stats)) throw_stopped();
  return stats;
}

ReplayStats replay_binary(std::istream& is, Feeder& feeder) {
  ReplayStats stats;  // .lines stays 0: frames are not line-shaped
  WireDecoder decoder;
  std::string chunk(std::size_t{64} * 1024, '\0');
  std::int64_t offset = 0;
  bool stopped = false;
  while (is.read(chunk.data(), static_cast<std::streamsize>(chunk.size())) ||
         is.gcount() > 0) {
    const std::string_view bytes(chunk.data(),
                                 static_cast<std::size_t>(is.gcount()));
    try {
      decoder.feed(bytes, [&](const ServeEvent& event) {
        if (!feeder.feed(event, stats)) stopped = true;
      });
    } catch (const Error& e) {
      throw InvalidArgumentError("byte offset " + std::to_string(offset) +
                                 "-" +
                                 std::to_string(offset + static_cast<
                                     std::int64_t>(bytes.size())) +
                                 ": " + std::string(e.what()));
    }
    if (stopped) throw_stopped();
    offset += static_cast<std::int64_t>(bytes.size());
  }
  if (!decoder.idle() || !decoder.header_seen()) {
    throw InvalidArgumentError(
        "mcs.serve.b1 stream: truncated at byte " + std::to_string(offset));
  }
  if (!feeder.finish(stats)) throw_stopped();
  return stats;
}

}  // namespace

ReplayStats replay_event_stream(std::istream& is, ServeEngine& engine,
                                bool batch) {
  Feeder feeder(engine, batch);
  return detect_stream_format(is) == WireFormat::kBinary
             ? replay_binary(is, feeder)
             : replay_jsonl(is, feeder);
}

}  // namespace mcs::serve
