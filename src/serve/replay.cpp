#include "serve/replay.hpp"

#include <istream>
#include <string>

#include "common/error.hpp"

namespace mcs::serve {

ReplayStats replay_event_stream(std::istream& is, ServeEngine& engine) {
  ReplayStats stats;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++stats.lines;
    std::optional<ServeEvent> event;
    try {
      event = decode_serve_line(line);
    } catch (const Error& e) {
      throw InvalidArgumentError("line " + std::to_string(line_number) + ": " +
                                 e.what());
    }
    if (!event) continue;  // header line
    ++stats.events;
    switch (engine.submit(*event)) {
      case SubmitStatus::kAccepted:
        ++stats.accepted;
        break;
      case SubmitStatus::kRejectedQueueFull:
        ++stats.shed;
        break;
      case SubmitStatus::kRejectedStopped:
        throw InvalidArgumentError(
            "line " + std::to_string(line_number) +
            ": engine is shut down; cannot replay into it");
    }
  }
  return stats;
}

}  // namespace mcs::serve
