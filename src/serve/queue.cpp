#include "serve/queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mcs::serve {

EventRing::EventRing(std::size_t capacity)
    : slots_(capacity), capacity_(capacity) {
  if (capacity == 0) {
    throw InvalidArgumentError("serve queue: capacity must be >= 1");
  }
}

void EventRing::enqueue_locked(const ServeEvent* events, std::size_t count,
                               std::uint64_t enqueue_ns) {
  for (std::size_t i = 0; i < count; ++i) {
    QueuedEvent& slot = slots_[(head_ + size_ + i) % capacity_];
    slot.event = events[i];
    slot.enqueue_ns = enqueue_ns;
  }
  size_ += count;
  high_watermark_ = std::max(high_watermark_,
                             static_cast<std::int64_t>(size_));
}

std::int64_t EventRing::push_block(const ServeEvent* events,
                                   std::size_t count,
                                   std::uint64_t enqueue_ns) {
  if (count == 0) return 0;  // nothing to enqueue; depth not inspected
  if (count > capacity_) {
    throw InvalidArgumentError(
        "serve queue: batch larger than the ring capacity");
  }
  std::unique_lock lock(mutex_);
  not_full_.wait(lock, [&] { return closed_ || has_space(count); });
  if (closed_) return -1;
  enqueue_locked(events, count, enqueue_ns);
  const auto depth = static_cast<std::int64_t>(size_);
  lock.unlock();
  // One wake regardless of batch size: the single consumer drains in
  // batches anyway.
  not_empty_.notify_one();
  return depth;
}

std::int64_t EventRing::try_push(const ServeEvent* events, std::size_t count,
                                 std::uint64_t enqueue_ns) {
  if (count == 0) return 0;  // nothing to enqueue; depth not inspected
  std::int64_t depth = -1;
  {
    const std::scoped_lock lock(mutex_);
    if (closed_ || !has_space(count)) return -1;
    enqueue_locked(events, count, enqueue_ns);
    depth = static_cast<std::int64_t>(size_);
  }
  not_empty_.notify_one();
  return depth;
}

std::size_t EventRing::pop_batch(std::vector<PoppedEvent>& out,
                                 std::size_t max) {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
  const std::size_t taken = std::min(size_, std::max<std::size_t>(max, 1));
  if (taken == 0) return 0;  // closed and drained
  for (std::size_t i = 0; i < taken; ++i) {
    QueuedEvent& slot = slots_[(head_ + i) % capacity_];
    // depth_left = ring occupancy after this batch + the batch tail still
    // ahead of the consumer, i.e. exactly what a one-at-a-time pop would
    // have reported for this event.
    out.push_back(PoppedEvent{std::move(slot.event), slot.enqueue_ns,
                              static_cast<std::int64_t>(size_ - i - 1)});
  }
  head_ = (head_ + taken) % capacity_;
  size_ -= taken;
  lock.unlock();
  // Batch removal may have made room for several blocked producers.
  not_full_.notify_all();
  return taken;
}

std::int64_t EventRing::high_watermark() const {
  const std::scoped_lock lock(mutex_);
  return high_watermark_;
}

void EventRing::close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

}  // namespace mcs::serve
