#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "serve/econ_telemetry.hpp"
#include "serve/telemetry.hpp"
#include "serve/trace_plane.hpp"

namespace mcs::serve {

namespace {

/// Counter name of one processed event kind.
std::string_view event_counter_name(ServeEventKind kind) {
  switch (kind) {
    case ServeEventKind::kRoundOpen:
      return "serve.events.round_open";
    case ServeEventKind::kTaskArrived:
      return "serve.events.task_arrived";
    case ServeEventKind::kBidSubmitted:
      return "serve.events.bid_submitted";
    case ServeEventKind::kSlotTick:
      return "serve.events.slot_tick";
    case ServeEventKind::kRoundClose:
      return "serve.events.round_close";
  }
  return "serve.events.unknown";
}

}  // namespace

void ServeConfig::validate() const {
  if (shards < 1) throw InvalidArgumentError("serve: shards must be >= 1");
  if (queue_capacity < 1) {
    throw InvalidArgumentError("serve: queue_capacity must be >= 1");
  }
  if (batch_size < 1 || batch_size > queue_capacity) {
    throw InvalidArgumentError(
        "serve: batch_size must be in [1, queue_capacity]");
  }
}

std::string_view to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kRejectedQueueFull:
      return "rejected:queue-full";
    case SubmitStatus::kRejectedStopped:
      return "rejected:stopped";
  }
  return "unknown";
}

int shard_of_round(std::int64_t round, int shards) {
  // splitmix64 finalizer: deterministic and well-mixed regardless of the
  // platform's std::hash.
  auto x = static_cast<std::uint64_t>(round);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(shards));
}

// ---------------------------------------------------------------- engine

ServeEngine::ServeEngine(ServeConfig config)
    : config_(std::move(config)), parent_registry_(obs::current_registry()) {
  config_.validate();
  if (config_.live != nullptr) {
    config_.live->attach(config_.shards,
                         static_cast<std::int64_t>(config_.queue_capacity));
  }
  if (config_.econ != nullptr) config_.econ->attach(config_.shards);
  if (config_.trace != nullptr) config_.trace->attach(config_.shards);
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, config_.queue_capacity));
  }
  // Start the workers only after every shard exists (shard_of_round may
  // route to any of them from the first submit on).
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      worker_main(*raw);
    });
  }
}

ServeEngine::~ServeEngine() {
  if (drained_) return;
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::uint64_t ServeEngine::stamp_ns() {
  if (config_.live != nullptr) return config_.live->now_ns();
  if (config_.trace != nullptr) return config_.trace->now_ns();
  return 0;
}

SubmitStatus ServeEngine::submit(const ServeEvent& event) {
  return submit_batch(shard_of_round(event.round, config_.shards), &event, 1);
}

SubmitStatus ServeEngine::submit_batch(int shard_index,
                                       const ServeEvent* events,
                                       std::size_t count) {
  if (count == 0) return SubmitStatus::kAccepted;
  if (shard_index < 0 || shard_index >= config_.shards) {
    throw InvalidArgumentError("serve: submit_batch shard out of range");
  }
  // A misrouted event would split its round across two workers and
  // silently corrupt the outcome; the hash re-check is a few ns per event.
  for (std::size_t i = 0; i < count; ++i) {
    if (shard_of_round(events[i].round, config_.shards) != shard_index) {
      throw InvalidArgumentError(
          "serve: submit_batch event routed to the wrong shard");
    }
  }
  if (stopping_.load(std::memory_order_relaxed)) {
    return SubmitStatus::kRejectedStopped;
  }
  LiveTelemetry* const live = config_.live;
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  // One clock read per handoff: the whole batch is enqueued at a single
  // instant, so its events legitimately share the stamp.
  const std::int64_t depth =
      config_.admission == ServeConfig::Admission::kBlock
          ? shard.queue.push_block(events, count, stamp_ns())
          : shard.queue.try_push(events, count, stamp_ns());
  if (depth < 0) {
    if (stopping_.load(std::memory_order_relaxed)) {
      return SubmitStatus::kRejectedStopped;
    }
    const auto shed = static_cast<std::int64_t>(count);
    rejected_.fetch_add(shed, std::memory_order_relaxed);
    if (live != nullptr) live->on_reject(shard_index, shed);
    return SubmitStatus::kRejectedQueueFull;
  }
  submitted_.fetch_add(static_cast<std::int64_t>(count),
                       std::memory_order_relaxed);
  if (live != nullptr) {
    live->on_submit(shard_index, static_cast<std::int64_t>(count), depth);
  }
  return SubmitStatus::kAccepted;
}

void ServeEngine::worker_main(Shard& shard) {
  // Telemetry: record into the shard's own registry (merged at drain) so
  // reduction stays deterministic; with telemetry off nothing installs and
  // the whole path stays on the no-op fast branch.
  std::optional<obs::ScopedRegistry> guard;
  if (parent_registry_ != nullptr) guard.emplace(&shard.registry);
  const obs::TraceSpan span("serve.shard");

  LiveTelemetry* const live = config_.live;
  TracePlane* const trace = config_.trace;
  std::unordered_map<std::int64_t, RoundMachine> machines;
  std::unordered_map<std::int64_t, std::uint64_t> open_ns;  // live plane
  // Consumer-side batching mirrors the producer side: up to kPopBatch
  // events leave the ring under one lock. The buffer is reused across
  // iterations, so the steady-state loop performs no allocation.
  constexpr std::size_t kPopBatch = 64;
  std::vector<PoppedEvent> batch;
  batch.reserve(kPopBatch);
  while (shard.queue.pop_batch(batch, kPopBatch) > 0) {
    for (const PoppedEvent& popped : batch) {
      std::uint64_t now = 0;
      if (live != nullptr) {
        now = live->now_ns();
        live->on_process(shard.index,
                         now >= popped.enqueue_ns ? now - popped.enqueue_ns
                                                  : 0,
                         popped.depth_left);
      } else if (trace != nullptr) {
        now = trace->now_ns();
      }
      if (trace != nullptr) {
        trace->on_event(shard.index,
                        now >= popped.enqueue_ns ? now - popped.enqueue_ns
                                                 : 0,
                        popped.event.client_lag_ns);
      }
      if (!shard.error.empty()) continue;  // poisoned: drain without work
      try {
        process_event(shard, machines, open_ns, popped.event, now,
                      popped.enqueue_ns);
      } catch (const Error& e) {
        if (config_.admission == ServeConfig::Admission::kReject) {
          // Shedding already made the stream lossy; a hole in one round's
          // event sequence drops that round, not the whole engine.
          if (trace != nullptr) {
            trace->on_round_corrupted(shard.index, popped.event.round,
                                      stamp_ns());
          }
          machines.erase(popped.event.round);
          open_ns.erase(popped.event.round);
          ++shard.stats.rounds_corrupted;
          obs::count("serve.rounds_corrupted");
        } else {
          shard.error = e.what();
        }
      }
    }
    batch.clear();
  }
  if (trace != nullptr) trace->on_worker_exit(shard.index, stamp_ns());
  shard.stats.rounds_abandoned +=
      static_cast<std::int64_t>(machines.size());
  if (!machines.empty()) {
    obs::count("serve.rounds_abandoned",
               static_cast<std::int64_t>(machines.size()));
  }
  shard.stats.queue_high_watermark = shard.queue.high_watermark();
  obs::set_gauge(
      "serve.shard." + std::to_string(shard.index) + ".queue_high_watermark",
      static_cast<double>(shard.stats.queue_high_watermark));
}

void ServeEngine::process_event(
    Shard& shard, std::unordered_map<std::int64_t, RoundMachine>& machines,
    std::unordered_map<std::int64_t, std::uint64_t>& open_ns,
    const ServeEvent& event, std::uint64_t now_ns, std::uint64_t enqueue_ns) {
  ++shard.stats.processed;
  obs::count(event_counter_name(event.kind));
  LiveTelemetry* const live = config_.live;
  TracePlane* const trace = config_.trace;

  if (event.kind == ServeEventKind::kRoundOpen) {
    if (machines.contains(event.round)) {
      throw InvalidArgumentError("serve stream, round " +
                                 std::to_string(event.round) +
                                 ": duplicate round_open");
    }
    machines.emplace(event.round,
                     RoundMachine(event, config_.greedy,
                                  /*capture=*/config_.econ != nullptr));
    if (live != nullptr) open_ns[event.round] = now_ns;
    if (trace != nullptr) {
      trace->on_round_open(shard.index, event.round, enqueue_ns, now_ns,
                           event.client_lag_ns);
    }
    return;
  }

  const auto it = machines.find(event.round);
  if (it == machines.end()) {
    if (config_.admission == ServeConfig::Admission::kReject) {
      // The round's open (or the whole round) was shed; drop silently.
      ++shard.stats.orphaned_events;
      obs::count("serve.events.orphaned");
      if (trace != nullptr) {
        trace->on_orphaned_event(shard.index, event.round, now_ns);
      }
      return;
    }
    throw InvalidArgumentError(
        "serve stream, round " + std::to_string(event.round) + ": " +
        std::string(to_string(event.kind)) + " for a round never opened");
  }
  const bool done = it->second.apply(event);
  if (trace != nullptr && event.kind == ServeEventKind::kSlotTick) {
    trace->on_slot_tick(shard.index, event.round,
                        static_cast<std::int32_t>(event.slot.value()), now_ns,
                        stamp_ns());
  }
  if (done) {
    RoundOutcome outcome = it->second.take_outcome();
    // Econ sentinel: audit the closed round while its capture is still
    // alive. The shard registry is installed on this thread, so the one
    // sanctioned counter (econ.violations) lands in the deterministic
    // merge like any other shard counter.
    const std::uint64_t settled_ns = trace != nullptr ? stamp_ns() : 0;
    std::int64_t violations = 0;
    if (config_.econ != nullptr) {
      violations = config_.econ->observe_round(shard.index, it->second,
                                               outcome);
    }
    machines.erase(it);
    if (live != nullptr) {
      const auto opened = open_ns.find(event.round);
      if (opened != open_ns.end()) {
        live->on_round_close(
            shard.index,
            now_ns >= opened->second ? now_ns - opened->second : 0);
        open_ns.erase(opened);
      }
    }
    if (trace != nullptr) {
      trace->on_round_complete(shard.index, event.round, now_ns, settled_ns,
                               stamp_ns(), violations);
    }
    ++shard.stats.rounds_completed;
    shard.stats.tasks_announced += outcome.tasks_announced;
    shard.stats.bids_admitted += outcome.bids_admitted;
    shard.stats.bids_rejected_reserve += outcome.bids_rejected;
    shard.stats.total_paid += outcome.total_paid;
    obs::count("serve.payments_micros", outcome.total_paid.micros());
    shard.outcomes.push_back(std::move(outcome));
  }
}

void ServeEngine::drain() {
  if (drained_) return;
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Deterministic reduction: fold shard registries and stats in shard
  // order (merge is associative/commutative on counters and histograms,
  // so the totals equal a single-threaded run over the same events).
  for (auto& shard : shards_) {
    if (parent_registry_ != nullptr) parent_registry_->merge(shard->registry);
    totals_.processed += shard->stats.processed;
    totals_.rounds_completed += shard->stats.rounds_completed;
    totals_.rounds_abandoned += shard->stats.rounds_abandoned;
    totals_.orphaned_events += shard->stats.orphaned_events;
    totals_.rounds_corrupted += shard->stats.rounds_corrupted;
    totals_.tasks_announced += shard->stats.tasks_announced;
    totals_.bids_admitted += shard->stats.bids_admitted;
    totals_.bids_rejected_reserve += shard->stats.bids_rejected_reserve;
    totals_.queue_high_watermark = std::max(
        totals_.queue_high_watermark, shard->stats.queue_high_watermark);
    totals_.total_paid += shard->stats.total_paid;
  }
  if (parent_registry_ != nullptr) {
    parent_registry_
        ->gauge("serve.queue_high_watermark",
                "highest queue depth any shard reached (max over shards)")
        .set(static_cast<double>(totals_.queue_high_watermark));
  }
  totals_.submitted = submitted_.load(std::memory_order_relaxed);
  totals_.rejected_backpressure = rejected_.load(std::memory_order_relaxed);
  drained_ = true;
  for (const auto& shard : shards_) {
    if (!shard->error.empty()) {
      throw InvalidArgumentError("serve engine: " + shard->error);
    }
  }
}

std::vector<RoundOutcome> ServeEngine::take_outcomes() {
  MCS_EXPECTS(drained_, "take_outcomes requires drain()");
  std::vector<RoundOutcome> all;
  for (auto& shard : shards_) {
    for (RoundOutcome& outcome : shard->outcomes) {
      all.push_back(std::move(outcome));
    }
    shard->outcomes.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const RoundOutcome& a, const RoundOutcome& b) {
              return a.round < b.round;
            });
  return all;
}

const ServeStats& ServeEngine::stats() const {
  MCS_EXPECTS(drained_, "stats requires drain()");
  return totals_;
}

// ---------------------------------------------------------- ShardBatcher

ShardBatcher::ShardBatcher(ServeEngine& engine)
    : engine_(engine), batch_size_(engine.config().batch_size) {
  buffers_.resize(static_cast<std::size_t>(engine.config().shards));
  for (auto& buffer : buffers_) buffer.reserve(batch_size_);
}

ShardBatcher::~ShardBatcher() {
  (void)flush();  // best effort; call flush() yourself for the verdict
}

SubmitStatus ShardBatcher::flush_shard(std::size_t shard) {
  std::vector<ServeEvent>& buffer = buffers_[shard];
  if (buffer.empty()) return SubmitStatus::kAccepted;
  const std::int64_t count = static_cast<std::int64_t>(buffer.size());
  const SubmitStatus status = engine_.submit_batch(
      static_cast<int>(shard), buffer.data(), buffer.size());
  buffer.clear();
  if (status == SubmitStatus::kAccepted) {
    accepted_ += count;
  } else {
    rejected_ += count;
  }
  return status;
}

SubmitStatus ShardBatcher::add(const ServeEvent& event) {
  const int shard = shard_of_round(event.round, engine_.config().shards);
  std::vector<ServeEvent>& buffer =
      buffers_[static_cast<std::size_t>(shard)];
  buffer.push_back(event);
  if (buffer.size() < batch_size_) return SubmitStatus::kAccepted;
  return flush_shard(static_cast<std::size_t>(shard));
}

SubmitStatus ShardBatcher::flush() {
  SubmitStatus verdict = SubmitStatus::kAccepted;
  for (std::size_t shard = 0; shard < buffers_.size(); ++shard) {
    const SubmitStatus status = flush_shard(shard);
    if (status != SubmitStatus::kAccepted &&
        verdict == SubmitStatus::kAccepted) {
      verdict = status;
    }
  }
  return verdict;
}

std::int64_t ShardBatcher::buffered() const {
  std::int64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += static_cast<std::int64_t>(buffer.size());
  }
  return total;
}

}  // namespace mcs::serve
