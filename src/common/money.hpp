// Exact fixed-point money arithmetic.
//
// Every cost, bid, value, payment, and welfare figure in the library is a
// Money. Truthfulness and individual-rationality are knife-edge properties:
// the audits compare utilities for exact (non-)improvement, so the
// representation must be exact. Money stores an int64 count of micro-units
// (1 unit == 1'000'000 micros), giving ~9.2e12 units of headroom -- far
// beyond any welfare sum this library produces.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>

#include "common/assert.hpp"

namespace mcs {

class Money {
 public:
  /// Micro-units per whole unit.
  static constexpr std::int64_t kScale = 1'000'000;

  constexpr Money() = default;

  /// Named constructor from whole units (the common case in the paper's
  /// examples: integer costs like 3, 5, 11).
  [[nodiscard]] static constexpr Money from_units(std::int64_t units) {
    return Money{units * kScale};
  }

  /// Named constructor from raw micro-units.
  [[nodiscard]] static constexpr Money from_micros(std::int64_t micros) {
    return Money{micros};
  }

  /// Nearest-micro conversion from a double (used only at workload
  /// generation boundaries, never in mechanism arithmetic).
  [[nodiscard]] static Money from_double(double units);

  /// Largest representable amount; used as "+infinity" sentinel by solvers.
  [[nodiscard]] static constexpr Money max() {
    return Money{INT64_MAX / 4};  // headroom so sums of a few maxes cannot overflow
  }

  /// Sum clamped to [-max(), max()]. operator+ on amounts near the int64
  /// extremes is signed-overflow UB; use this wherever an input-controlled
  /// sum must stay a valid "+infinity"-style bound (e.g. the bisection
  /// upper bound over adversarial scenario files).
  [[nodiscard]] static constexpr Money saturating_add(Money a, Money b) {
    const std::int64_t cap = max().micros_;
    if (a.micros_ >= 0 && b.micros_ > cap - a.micros_) return max();
    if (a.micros_ < 0 && b.micros_ < -cap - a.micros_) return -max();
    const std::int64_t sum = a.micros_ + b.micros_;
    if (sum > cap) return max();
    if (sum < -cap) return -max();
    return Money{sum};
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(micros_) / static_cast<double>(kScale);
  }
  [[nodiscard]] constexpr bool is_zero() const { return micros_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return micros_ < 0; }

  friend constexpr auto operator<=>(Money, Money) = default;

  constexpr Money& operator+=(Money rhs) {
    micros_ += rhs.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money rhs) {
    micros_ -= rhs.micros_;
    return *this;
  }
  friend constexpr Money operator+(Money a, Money b) { return a += b; }
  friend constexpr Money operator-(Money a, Money b) { return a -= b; }
  friend constexpr Money operator-(Money a) { return Money{-a.micros_}; }

  /// Scale by an integer count (e.g. gamma tasks x value nu).
  friend constexpr Money operator*(Money a, std::int64_t k) {
    return Money{a.micros_ * k};
  }
  friend constexpr Money operator*(std::int64_t k, Money a) { return a * k; }

  /// Exact ratio of two amounts (overpayment ratio, competitive ratio).
  /// Denominator must be nonzero.
  [[nodiscard]] double ratio_to(Money denom) const;

  /// "12.5" style rendering with trailing zeros trimmed.
  [[nodiscard]] std::string to_string() const;

  /// Parses the to_string() format: optional sign, digits, optional '.'
  /// plus up to six fractional digits ("25", "-3.5", "0.000001"). Throws
  /// InvalidArgumentError on malformed input or overflow. Exact inverse of
  /// to_string().
  [[nodiscard]] static Money parse(std::string_view text);

 private:
  constexpr explicit Money(std::int64_t micros) : micros_(micros) {}

  std::int64_t micros_{0};
};

std::ostream& operator<<(std::ostream& os, Money m);

namespace money_literals {

/// 25_mu  == Money::from_units(25).
constexpr Money operator""_mu(unsigned long long units) {
  return Money::from_units(static_cast<std::int64_t>(units));
}

}  // namespace money_literals

}  // namespace mcs
