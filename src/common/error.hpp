// Error vocabulary for the mcs library.
//
// The library signals failure to perform a required task with exceptions
// (Core Guidelines I.10). All exceptions derive from mcs::Error so callers
// can catch library failures as one family. Programming-contract violations
// (broken preconditions/invariants) use the distinct ContractViolation
// branch so tests can assert on them specifically.
#pragma once

#include <stdexcept>
#include <string>

namespace mcs {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument outside the documented domain.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A contract (precondition, postcondition, or invariant) was violated.
/// Raised by MCS_EXPECTS / MCS_ENSURES / MCS_ASSERT.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// An input describes a structurally invalid auction instance
/// (e.g. a bid whose departure precedes its arrival).
class InvalidScenarioError : public Error {
 public:
  explicit InvalidScenarioError(const std::string& what) : Error(what) {}
};

/// A solver could not produce a solution (should not happen for the
/// well-formed instances this library constructs; indicates a bug upstream).
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// Failure writing experiment artifacts (CSV/JSON files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

}  // namespace mcs
