#include "common/distributions.hpp"

#include <cmath>
#include <deque>

#include "common/assert.hpp"

namespace mcs {

// ---------------------------------------------------------------- Poisson

PoissonSampler::PoissonSampler(double lambda) : lambda_(lambda) {
  MCS_EXPECTS(lambda >= 0.0 && std::isfinite(lambda),
              "PoissonSampler requires finite lambda >= 0");
  if (lambda_ < 10.0) {
    exp_neg_lambda_ = std::exp(-lambda_);
  } else {
    // PTRS constants (Hormann, "The transformed rejection method for
    // generating Poisson random variables", 1993).
    b_ = 0.931 + 2.53 * std::sqrt(lambda_);
    a_ = -0.059 + 0.02483 * b_;
    inv_alpha_ = 1.1239 + 1.1328 / (b_ - 3.4);
    v_r_ = 0.9277 - 3.6224 / (b_ - 2.0);
    log_lambda_ = std::log(lambda_);
  }
}

std::int64_t PoissonSampler::sample(Rng& rng) const {
  if (lambda_ == 0.0) return 0;
  return lambda_ < 10.0 ? sample_knuth(rng) : sample_ptrs(rng);
}

std::int64_t PoissonSampler::sample_knuth(Rng& rng) const {
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform01();
  } while (p > exp_neg_lambda_);
  return k - 1;
}

std::int64_t PoissonSampler::sample_ptrs(Rng& rng) const {
  // Transformed rejection with squeeze; expected < 1.2 iterations.
  for (;;) {
    const double u = rng.uniform01() - 0.5;
    const double v = rng.uniform01();
    const double us = 0.5 - std::abs(u);
    const auto k = static_cast<std::int64_t>(
        std::floor((2.0 * a_ / us + b_) * u + lambda_ + 0.43));
    if (us >= 0.07 && v <= v_r_) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha_ / (a_ / (us * us) + b_)) <=
        static_cast<double>(k) * log_lambda_ - lambda_ -
            std::lgamma(static_cast<double>(k) + 1.0)) {
      return k;
    }
  }
}

// ------------------------------------------------------------ UniformInt

UniformIntSampler::UniformIntSampler(std::int64_t lo, std::int64_t hi)
    : lo_(lo), hi_(hi) {
  MCS_EXPECTS(lo <= hi, "UniformIntSampler requires lo <= hi");
}

std::int64_t UniformIntSampler::sample(Rng& rng) const {
  return rng.uniform_int(lo_, hi_);
}

// ----------------------------------------------------------- Exponential

ExponentialSampler::ExponentialSampler(double rate) : rate_(rate) {
  MCS_EXPECTS(rate > 0.0 && std::isfinite(rate),
              "ExponentialSampler requires finite rate > 0");
}

double ExponentialSampler::sample(Rng& rng) const {
  // Inversion; 1 - u in (0, 1] avoids log(0).
  return -std::log1p(-rng.uniform01()) / rate_;
}

// ---------------------------------------------------------------- Normal

NormalSampler::NormalSampler(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  MCS_EXPECTS(stddev >= 0.0 && std::isfinite(stddev),
              "NormalSampler requires finite stddev >= 0");
}

double NormalSampler::sample(Rng& rng) {
  if (has_spare_) {
    has_spare_ = false;
    return mean_ + stddev_ * spare_;
  }
  double u;
  double v;
  double s;
  do {
    u = rng.uniform_real(-1.0, 1.0);
    v = rng.uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean_ + stddev_ * (u * factor);
}

double NormalSampler::sample_truncated(Rng& rng, double lo, double hi) {
  MCS_EXPECTS(lo < hi, "sample_truncated requires lo < hi");
  // Plain rejection; fine for the mild truncations used by the workload
  // generator (support several stddevs wide).
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const double x = sample(rng);
    if (x >= lo && x <= hi) return x;
  }
  // Degenerate truncation (interval far in a tail): fall back to uniform so
  // generation still terminates deterministically.
  return rng.uniform_real(lo, hi);
}

// -------------------------------------------------------------- Discrete

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  MCS_EXPECTS(!weights.empty(), "DiscreteSampler requires at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    MCS_EXPECTS(w >= 0.0 && std::isfinite(w),
                "DiscreteSampler weights must be finite and nonnegative");
    total += w;
  }
  MCS_EXPECTS(total > 0.0, "DiscreteSampler requires positive total weight");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker/Vose alias construction.
  std::vector<double> scaled(n);
  std::deque<std::uint32_t> small;
  std::deque<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.front();
    small.pop_front();
    const std::uint32_t l = large.front();
    large.pop_front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const std::size_t column = rng.next_below(prob_.size());
  return rng.uniform01() < prob_[column]
             ? column
             : static_cast<std::size_t>(alias_[column]);
}

}  // namespace mcs
