// Streaming statistics for experiment aggregation.
//
// Every figure in the paper's evaluation averages a metric over repeated
// simulation runs. RunningStats accumulates mean/variance in one pass
// (Welford), Summary additionally retains samples for quantiles, and
// confidence_interval_95 reports the half-width used in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <vector>

namespace mcs {

/// One-pass mean / variance / extrema accumulator (Welford's algorithm:
/// numerically stable, O(1) memory).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Mean of the samples so far; requires at least one sample.
  [[nodiscard]] double mean() const;

  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// Smallest / largest sample; require at least one sample.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Half-width of the 95% normal-approximation confidence interval of the
  /// mean; 0 for fewer than two samples.
  [[nodiscard]] double ci95_half_width() const;

  /// Merges another accumulator (parallel reduction identity holds).
  void merge(const RunningStats& other);

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Retains all samples: everything RunningStats offers plus quantiles.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }

  /// Quantile by linear interpolation on the sorted samples;
  /// q in [0, 1]; requires at least one sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  RunningStats stats_;
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

}  // namespace mcs
