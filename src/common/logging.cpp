#include "common/logging.hpp"

#include <iostream>

namespace mcs {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger()
    : sink_([](LogLevel level, std::string_view message) {
        std::cerr << to_string(level) << ' ' << message << '\n';
      }) {}

void Logger::set_sink(Sink sink) {
  if (sink) sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace mcs
