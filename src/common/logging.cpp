#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace mcs {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char ch : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

namespace {

/// Seconds since the logger was first touched (monotonic clock).
double uptime_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Small dense id for the calling thread (1 = first thread that logged).
int thread_ordinal() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger()
    : sink_([](LogLevel level, std::string_view message) {
        // "[+12.345s T1] LEVEL message" -- monotonic uptime + thread id so
        // interleaved bench/parallel-sim output stays attributable.
        char prefix[48];
        std::snprintf(prefix, sizeof prefix, "[+%.3fs T%d] ",
                      uptime_seconds(), thread_ordinal());
        std::cerr << prefix << to_string(level) << ' ' << message << '\n';
      }) {
  // MCS_LOG_LEVEL=debug|info|warn|error|off raises or lowers verbosity
  // without code changes (benches, CLI, CI). Unknown values are ignored:
  // a logger cannot log its own misconfiguration yet.
  if (const char* env = std::getenv("MCS_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) level_ = *level;
  }
}

void Logger::set_sink(Sink sink) {
  if (sink) sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace mcs
