#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mcs {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  MCS_EXPECTS(count_ > 0, "mean() of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  MCS_EXPECTS(count_ > 0, "min() of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  MCS_EXPECTS(count_ > 0, "max() of empty RunningStats");
  return max_;
}

double RunningStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Summary::add(double x) {
  stats_.add(x);
  samples_.push_back(x);
  sorted_ = false;
}

double Summary::quantile(double q) const {
  MCS_EXPECTS(!samples_.empty(), "quantile() of empty Summary");
  MCS_EXPECTS(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace mcs
