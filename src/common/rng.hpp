// Deterministic pseudo-random number generation.
//
// All experiments in this library are seeded and reproducible: the same seed
// yields the same workload, allocation, payments, and figures, across runs
// and platforms. We implement xoshiro256** (public-domain algorithm by
// Blackman & Vigna) seeded through SplitMix64, rather than relying on
// std::mt19937 whose distributions are not bit-stable across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace mcs {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into a
/// full xoshiro state (and usable standalone for cheap hashing).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Derives an independent child generator; the (seed, stream) pair is
  /// deterministic, so parallel experiment repetitions stay reproducible.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_origin_{0};
};

}  // namespace mcs
