// Strong vocabulary types for the crowdsourcing auction domain.
//
// Slots, smartphone ids, and task ids are all "just integers", and mixing
// them up is exactly the class of bug a reproduction cannot afford. Each is
// therefore a distinct strong type (Core Guidelines I.4): same machine cost
// as a raw integer, but no accidental cross-assignment.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mcs {

namespace detail {

/// CRTP-free tagged integer. `Tag` makes distinct instantiations
/// incompatible; `Rep` is the underlying representation.
template <typename Tag, typename Rep = std::int32_t>
class TaggedInt {
 public:
  using rep_type = Rep;

  constexpr TaggedInt() = default;
  constexpr explicit TaggedInt(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(TaggedInt, TaggedInt) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedInt v) {
    return os << v.value_;
  }

 private:
  Rep value_{0};
};

}  // namespace detail

/// One time slot inside a round. Slots are 1-based like the paper
/// (slot 1 is the first slot of the round); Slot(0) is used as "before the
/// round" sentinel in a few algorithms and never denotes a real slot.
struct SlotTag {};
using Slot = detail::TaggedInt<SlotTag>;

/// Identity of a smartphone (bidder). Dense, 0-based within a scenario.
struct PhoneTag {};
using PhoneId = detail::TaggedInt<PhoneTag>;

/// Identity of a sensing task. Dense, 0-based within a scenario; a task also
/// carries the slot it arrived in (see model/task.hpp).
struct TaskTag {};
using TaskId = detail::TaggedInt<TaskTag>;

/// Successor slot (slots are traversed in time order everywhere).
[[nodiscard]] constexpr Slot next(Slot s) { return Slot{s.value() + 1}; }

/// Predecessor slot.
[[nodiscard]] constexpr Slot prev(Slot s) { return Slot{s.value() - 1}; }

}  // namespace mcs

namespace std {

template <>
struct hash<mcs::Slot> {
  size_t operator()(mcs::Slot s) const noexcept {
    return hash<mcs::Slot::rep_type>{}(s.value());
  }
};

template <>
struct hash<mcs::PhoneId> {
  size_t operator()(mcs::PhoneId p) const noexcept {
    return hash<mcs::PhoneId::rep_type>{}(p.value());
  }
};

template <>
struct hash<mcs::TaskId> {
  size_t operator()(mcs::TaskId t) const noexcept {
    return hash<mcs::TaskId::rep_type>{}(t.value());
  }
};

}  // namespace std
