#include "common/money.hpp"

#include "common/error.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace mcs {

Money Money::from_double(double units) {
  MCS_EXPECTS(std::isfinite(units), "Money::from_double requires a finite value");
  const double micros = units * static_cast<double>(kScale);
  MCS_EXPECTS(std::abs(micros) < static_cast<double>(max().micros()),
              "Money::from_double out of range");
  return Money{static_cast<std::int64_t>(std::llround(micros))};
}

double Money::ratio_to(Money denom) const {
  MCS_EXPECTS(denom.micros_ != 0, "Money::ratio_to requires nonzero denominator");
  return static_cast<double>(micros_) / static_cast<double>(denom.micros_);
}

std::string Money::to_string() const {
  const bool negative = micros_ < 0;
  // Avoid overflow on INT64_MIN is moot: Money never holds it (max() guard).
  const std::int64_t abs = negative ? -micros_ : micros_;
  const std::int64_t whole = abs / kScale;
  std::int64_t frac = abs % kScale;

  std::ostringstream os;
  if (negative) os << '-';
  os << whole;
  if (frac != 0) {
    // Render up to 6 fractional digits, trimming trailing zeros.
    char digits[7];
    for (int i = 5; i >= 0; --i) {
      digits[i] = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    digits[6] = '\0';
    int last = 5;
    while (last > 0 && digits[last] == '0') --last;
    os << '.';
    for (int i = 0; i <= last; ++i) os << digits[i];
  }
  return os.str();
}

Money Money::parse(std::string_view text) {
  const auto fail = [&]() -> Money {
    throw InvalidArgumentError("malformed Money literal: '" +
                               std::string(text) + "'");
  };
  std::size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
    return fail();
  }
  std::int64_t whole = 0;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    whole = whole * 10 + (text[pos] - '0');
    if (whole > max().micros() / kScale) return fail();  // overflow guard
    ++pos;
  }
  std::int64_t frac = 0;
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    int digits = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      if (++digits > 6) return fail();  // finer than a micro-unit
      frac = frac * 10 + (text[pos] - '0');
      ++pos;
    }
    if (digits == 0) return fail();  // "1." is malformed
    for (; digits < 6; ++digits) frac *= 10;
  }
  if (pos != text.size()) return fail();
  // The whole-part guard above caps whole at max()/kScale, but the
  // fractional digits can still push the total past max() (e.g.
  // "2305843009213.999999"); parsed amounts must stay inside the
  // [-max(), max()] envelope the solvers treat as +/-infinity.
  const std::int64_t micros = whole * kScale + frac;
  if (micros > max().micros()) return fail();
  return Money{negative ? -micros : micros};
}

std::ostream& operator<<(std::ostream& os, Money m) { return os << m.to_string(); }

}  // namespace mcs
