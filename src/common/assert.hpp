// Contract-checking macros (Core Guidelines I.6/I.8 style).
//
// MCS_EXPECTS(cond, msg)  -- precondition at function entry
// MCS_ENSURES(cond, msg)  -- postcondition before returning
// MCS_ASSERT(cond, msg)   -- internal invariant
//
// All three throw mcs::ContractViolation with file:line context. They are
// always on: the auction mechanisms are knife-edge on their invariants
// (truthfulness proofs assume them), and the checks are cheap relative to
// the combinatorial solvers they guard.
#pragma once

#include <sstream>
#include <string>

#include "common/error.hpp"

namespace mcs::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " -- " << message;
  throw ContractViolation(os.str());
}

}  // namespace mcs::detail

#define MCS_CONTRACT_CHECK_(kind, cond, msg)                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mcs::detail::contract_failure(kind, #cond, __FILE__, __LINE__, msg);  \
    }                                                                         \
  } while (false)

#define MCS_EXPECTS(cond, msg) MCS_CONTRACT_CHECK_("precondition", cond, msg)
#define MCS_ENSURES(cond, msg) MCS_CONTRACT_CHECK_("postcondition", cond, msg)
#define MCS_ASSERT(cond, msg) MCS_CONTRACT_CHECK_("invariant", cond, msg)
