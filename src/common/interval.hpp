// Closed slot intervals.
//
// A smartphone's active time is the closed interval [begin, end] of slots in
// which it is willing to perform one task (paper Section III-A). The
// no-early-arrival / no-late-departure rule says a reported interval must be
// contained in the true one; `contains(SlotInterval)` encodes exactly that.
#pragma once

#include <algorithm>
#include <optional>
#include <ostream>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace mcs {

class SlotInterval {
 public:
  /// Constructs [begin, end]; requires begin <= end.
  constexpr SlotInterval(Slot begin, Slot end) : begin_(begin), end_(end) {
    MCS_EXPECTS(begin <= end, "SlotInterval requires begin <= end");
  }

  /// Convenience: [b, e] from raw slot numbers.
  [[nodiscard]] static constexpr SlotInterval of(Slot::rep_type b,
                                                 Slot::rep_type e) {
    return SlotInterval{Slot{b}, Slot{e}};
  }

  [[nodiscard]] constexpr Slot begin() const { return begin_; }
  [[nodiscard]] constexpr Slot end() const { return end_; }

  /// Number of slots covered (always >= 1).
  [[nodiscard]] constexpr Slot::rep_type length() const {
    return end_.value() - begin_.value() + 1;
  }

  [[nodiscard]] constexpr bool contains(Slot s) const {
    return begin_ <= s && s <= end_;
  }

  /// True when `inner` lies entirely inside this interval -- the legality
  /// condition for a reported active time versus the true one.
  [[nodiscard]] constexpr bool contains(SlotInterval inner) const {
    return begin_ <= inner.begin_ && inner.end_ <= end_;
  }

  /// Intersection, or nullopt when disjoint.
  [[nodiscard]] std::optional<SlotInterval> intersect(SlotInterval other) const {
    const Slot b = std::max(begin_, other.begin_);
    const Slot e = std::min(end_, other.end_);
    if (b > e) return std::nullopt;
    return SlotInterval{b, e};
  }

  friend constexpr bool operator==(SlotInterval, SlotInterval) = default;

  friend std::ostream& operator<<(std::ostream& os, SlotInterval iv) {
    return os << '[' << iv.begin_ << ',' << iv.end_ << ']';
  }

 private:
  Slot begin_;
  Slot end_;
};

}  // namespace mcs
