// Minimal leveled logging.
//
// The simulators log progress at Info and algorithmic traces at Debug. The
// sink and threshold are process-wide but mutable only through the explicit
// Logger interface (so tests can capture output); default is stderr at Warn,
// which keeps bench/test output clean. The default sink prefixes each line
// with a monotonic uptime timestamp and a dense thread ordinal
// ("[+1.234s T2] WARN ..."), and the initial threshold can be overridden
// without code changes via the MCS_LOG_LEVEL environment variable
// (debug|info|warn|error|off).
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace mcs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Parses a level name (case-insensitive: "debug", "info", "warn"/"warning",
/// "error", "off"/"none"); nullopt for anything else. Used for the
/// MCS_LOG_LEVEL environment variable and exposed for CLI flag parsing.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replaces the output sink (default writes "LEVEL message\n" to stderr).
  void set_sink(Sink sink);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, std::string_view message);

 private:
  Logger();

  LogLevel level_{LogLevel::kWarn};
  Sink sink_;
};

namespace detail {

/// Builds the message lazily: the stream only runs when the level is on.
template <typename Fn>
void log_lazy(LogLevel level, Fn&& build) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  build(os);
  logger.log(level, os.str());
}

}  // namespace detail

}  // namespace mcs

#define MCS_LOG(level, expr)                                              \
  ::mcs::detail::log_lazy((level), [&](std::ostringstream& mcs_log_os) {  \
    mcs_log_os << expr;                                                   \
  })

#define MCS_LOG_DEBUG(expr) MCS_LOG(::mcs::LogLevel::kDebug, expr)
#define MCS_LOG_INFO(expr) MCS_LOG(::mcs::LogLevel::kInfo, expr)
#define MCS_LOG_WARN(expr) MCS_LOG(::mcs::LogLevel::kWarn, expr)
#define MCS_LOG_ERROR(expr) MCS_LOG(::mcs::LogLevel::kError, expr)
