// Samplers for the workload model of Section VI-A.
//
// The paper draws smartphone and task arrivals from Poisson distributions
// and active-time lengths from a uniform distribution; we add exponential,
// (truncated) normal, and general discrete distributions so experiments can
// probe robustness of the mechanisms to other workloads (an extension the
// evaluation section motivates but does not run).
//
// All samplers draw from mcs::Rng only, keeping every experiment
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mcs {

/// Poisson(lambda) sampler.
///
/// Uses Knuth's product-of-uniforms method for small lambda and the
/// transformed-rejection method (PTRS, Hormann 1993) for lambda >= 10, so
/// sampling stays O(1) for the arrival-rate sweeps of Figs. 7 and 10.
class PoissonSampler {
 public:
  explicit PoissonSampler(double lambda);

  [[nodiscard]] double lambda() const { return lambda_; }

  std::int64_t sample(Rng& rng) const;

 private:
  std::int64_t sample_knuth(Rng& rng) const;
  std::int64_t sample_ptrs(Rng& rng) const;

  double lambda_;
  // Precomputed constants.
  double exp_neg_lambda_{0.0};  // Knuth
  double b_{0.0}, a_{0.0}, inv_alpha_{0.0}, v_r_{0.0}, log_lambda_{0.0};  // PTRS
};

/// Uniform integer on the closed range [lo, hi].
class UniformIntSampler {
 public:
  UniformIntSampler(std::int64_t lo, std::int64_t hi);

  [[nodiscard]] std::int64_t lo() const { return lo_; }
  [[nodiscard]] std::int64_t hi() const { return hi_; }
  [[nodiscard]] double mean() const {
    return 0.5 * (static_cast<double>(lo_) + static_cast<double>(hi_));
  }

  std::int64_t sample(Rng& rng) const;

 private:
  std::int64_t lo_;
  std::int64_t hi_;
};

/// Exponential(rate) sampler by inversion.
class ExponentialSampler {
 public:
  explicit ExponentialSampler(double rate);

  double sample(Rng& rng) const;

 private:
  double rate_;
};

/// Normal(mean, stddev) sampler (Marsaglia polar method, cached spare).
class NormalSampler {
 public:
  NormalSampler(double mean, double stddev);

  double sample(Rng& rng);

  /// Redraws until the value lands in [lo, hi]; requires a nonempty
  /// intersection of [lo, hi] with the distribution's support (always true
  /// for the normal) and lo < hi.
  double sample_truncated(Rng& rng, double lo, double hi);

 private:
  double mean_;
  double stddev_;
  bool has_spare_{false};
  double spare_{0.0};
};

/// Sampler over {0, .., n-1} with given nonnegative weights, using Walker's
/// alias method: O(n) setup, O(1) per sample.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace mcs
