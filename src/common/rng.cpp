#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace mcs {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_origin_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // xoshiro requires a nonzero state; SplitMix64 output of any seed is
  // astronomically unlikely to be all-zero, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MCS_EXPECTS(bound > 0, "next_below requires positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MCS_EXPECTS(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  MCS_EXPECTS(lo <= hi, "uniform_real requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  MCS_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
  return uniform01() < p;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix origin seed and stream id through SplitMix64 to decorrelate children.
  SplitMix64 sm(seed_origin_ ^ (0xA24BAED4963EE407ULL * (stream + 1)));
  return Rng(sm.next());
}

}  // namespace mcs
