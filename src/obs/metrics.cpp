#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace mcs::obs {

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0) {
  MCS_EXPECTS(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
                  std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                      boundaries_.end(),
              "histogram boundaries must be strictly increasing");
}

std::vector<double> Histogram::exponential_boundaries(double start,
                                                      double factor,
                                                      int count) {
  MCS_EXPECTS(start > 0.0 && factor > 1.0 && count >= 1,
              "exponential_boundaries requires start > 0, factor > 1, count >= 1");
  std::vector<double> boundaries;
  boundaries.reserve(static_cast<std::size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    boundaries.push_back(edge);
    edge *= factor;
  }
  return boundaries;
}

const std::vector<double>& Histogram::default_latency_boundaries_us() {
  static const std::vector<double> boundaries =
      exponential_boundaries(1.0, 2.0, 24);  // 1us .. ~8.4s
  return boundaries;
}

void Histogram::observe(double value) {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - boundaries_.begin());
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::int64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

void Histogram::merge(const Histogram& other) {
  MCS_EXPECTS(boundaries_ == other.boundaries_,
              "histogram merge requires identical boundaries");
  // Copy the source under its own lock first; never hold both locks at
  // once (no lock-order issue if a caller merges a/b and b/a concurrently).
  std::vector<std::int64_t> other_counts;
  std::int64_t other_count = 0;
  double other_sum = 0.0;
  double other_min = 0.0;
  double other_max = 0.0;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    other_counts = other.counts_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  if (other_count == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other_counts[i];
  }
  if (count_ == 0 || other_min < min_) min_ = other_min;
  if (count_ == 0 || other_max > max_) max_ = other_max;
  count_ += other_count;
  sum_ += other_sum;
}

// ------------------------------------------------------- MetricsRegistry

void MetricsRegistry::record_help(std::string_view name,
                                  std::string_view help) {
  // Caller holds mutex_. First non-empty description wins.
  if (help.empty()) return;
  if (help_.find(name) != help_.end()) return;
  help_.emplace(std::string(name), std::string(help));
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  record_help(name, help);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  record_help(name, help);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>* boundaries,
                                      std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  record_help(name, help);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    MCS_EXPECTS(boundaries == nullptr ||
                    it->second->boundaries() == *boundaries,
                "histogram re-registered with different boundaries");
    return *it->second;
  }
  const std::vector<double>& edges =
      boundaries != nullptr ? *boundaries
                            : Histogram::default_latency_boundaries_us();
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(edges))
              .first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  MCS_EXPECTS(this != &other, "cannot merge a registry into itself");
  // Snapshot the source's instrument pointers under its lock, then record
  // into this registry through the normal (locking) accessors.
  std::vector<std::pair<std::string, const Counter*>> other_counters;
  std::vector<std::pair<std::string, const Gauge*>> other_gauges;
  std::vector<std::pair<std::string, const Histogram*>> other_histograms;
  std::vector<std::pair<std::string, std::string>> other_help;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, instrument] : other.counters_) {
      other_counters.emplace_back(name, instrument.get());
    }
    for (const auto& [name, instrument] : other.gauges_) {
      other_gauges.emplace_back(name, instrument.get());
    }
    for (const auto& [name, instrument] : other.histograms_) {
      other_histograms.emplace_back(name, instrument.get());
    }
    for (const auto& [name, text] : other.help_) {
      other_help.emplace_back(name, text);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, text] : other_help) record_help(name, text);
  }
  for (const auto& [name, instrument] : other_counters) {
    counter(name).add(instrument->value());
  }
  for (const auto& [name, instrument] : other_gauges) {
    Gauge& mine = gauge(name);
    if (!mine.has_value() && instrument->has_value()) {
      mine.set(instrument->value());
    }
  }
  for (const auto& [name, instrument] : other_histograms) {
    const std::vector<double> boundaries = instrument->boundaries();
    histogram(name, &boundaries).merge(*instrument);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, instrument] : counters_) {
    snap.counters[name] = instrument->value();
  }
  for (const auto& [name, instrument] : gauges_) {
    if (instrument->has_value()) snap.gauges[name] = instrument->value();
  }
  for (const auto& [name, instrument] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.boundaries = instrument->boundaries();
    data.bucket_counts = instrument->bucket_counts();
    data.count = instrument->count();
    data.sum = instrument->sum();
    data.min = instrument->min();
    data.max = instrument->max();
    snap.histograms[name] = std::move(data);
  }
  for (const auto& [name, text] : help_) snap.help[name] = text;
  return snap;
}

// ------------------------------------------------------------- quantiles

double estimate_quantile(const MetricsSnapshot::HistogramData& data,
                         double q) {
  if (data.count <= 0) return std::numeric_limits<double>::quiet_NaN();
  if (data.count == 1) return data.min;  // one sample: every quantile is it
  if (q <= 0.0) return data.min;
  if (q >= 1.0) return data.max;
  const double target = q * static_cast<double>(data.count);
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < data.bucket_counts.size(); ++b) {
    const std::int64_t prev = cumulative;
    cumulative += data.bucket_counts[b];
    if (static_cast<double>(cumulative) < target || data.bucket_counts[b] == 0) {
      continue;
    }
    // Bucket edges, tightened by the tracked extrema: the overflow bucket
    // has no upper boundary (use max) and a low-outlier min can undercut
    // boundaries[b-1], so clamp both edges into [min, max] before
    // interpolating -- otherwise an all-overflow histogram would
    // extrapolate past the largest recorded sample.
    double lower = b == 0 ? data.min : data.boundaries[b - 1];
    double upper = b < data.boundaries.size() ? data.boundaries[b] : data.max;
    lower = std::max(lower, data.min);
    upper = std::min(upper, data.max);
    if (!(upper > lower)) return std::clamp(lower, data.min, data.max);
    const double position = (target - static_cast<double>(prev)) /
                            static_cast<double>(data.bucket_counts[b]);
    const double estimate = lower + (upper - lower) * position;
    return std::clamp(estimate, data.min, data.max);
  }
  return data.max;  // unreachable when counts are consistent
}

// -------------------------------------------------- headline counter set

void preregister_headline_counters(MetricsRegistry& registry) {
  registry.counter("matching.hungarian.iterations",
                   "do-while relabel rounds inside the Hungarian augment_row");
  registry.counter("matching.hungarian.augmenting_paths",
                   "augmenting paths found by the Hungarian solver");
  registry.counter("matching.flow.augmenting_paths",
                   "SPFA augmentations in the min-cost-flow matcher");
  registry.counter("auction.critical_value.probes",
                   "wins(b)? evaluations during critical-value search");
  registry.counter("auction.greedy.allocation_runs",
                   "Algorithm-1 (online greedy allocation) executions");
  registry.counter("auction.counterfactual.payment_forks",
                   "Algorithm-2 payment replays forked from a shared-prefix "
                   "checkpoint");
  registry.counter("auction.counterfactual.probe_forks",
                   "critical-value bisection probes forked from a "
                   "shared-prefix checkpoint");
  registry.counter("auction.counterfactual.slots_replayed",
                   "slots simulated by counterfactual forks (the suffix "
                   "after the fork point)");
  registry.counter("auction.counterfactual.slots_skipped",
                   "slots inherited byte-identically from factual "
                   "checkpoints instead of being replayed");
}

// ------------------------------------------------------ current registry

namespace {
thread_local MetricsRegistry* t_current_registry = nullptr;
}  // namespace

MetricsRegistry* current_registry() noexcept { return t_current_registry; }

ScopedRegistry::ScopedRegistry(MetricsRegistry* registry) noexcept
    : previous_(t_current_registry) {
  t_current_registry = registry;
}

ScopedRegistry::~ScopedRegistry() { t_current_registry = previous_; }

}  // namespace mcs::obs
