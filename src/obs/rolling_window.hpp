// Rolling-window aggregation and overload health for the live timing plane.
//
// The engine exposes cumulative live stats (monotone counters plus
// cumulative latency sketches); a RollingWindowAggregator turns successive
// samples of those cumulatives into per-window deltas -- events/sec,
// round-closes/sec, reject rate, latency quantiles, queue-depth
// watermarks -- and keeps a fixed-size ring of recent windows. The window
// edges come from whatever MonotonicClock the caller samples with, so a
// FakeClock makes every derived rate and quantile byte-reproducible.
//
// classify_health reads the recent windows and names the operational
// state: healthy, saturated (queue watermark dwelling near capacity),
// shedding (admission control rejecting traffic), or stalled (backlogged
// queue with no forward progress). It is a pure function of the window
// ring so tests enumerate every state directly.
//
// Everything here is wall-clock territory: none of it may feed the
// deterministic counter plane that bench-diff gates.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>

#include "obs/latency_sketch.hpp"

namespace mcs::obs {

/// Cumulative live stats of one event-processing lane (e.g. one serve
/// shard) at a sample instant. All counters are monotone except
/// queue_depth (instantaneous) and window_watermark (highest depth since
/// the previous sample; the sampler resets it on read).
struct LiveCumulative {
  std::uint64_t at_ns{0};
  std::int64_t submitted{0};      ///< events accepted into the queue
  std::int64_t processed{0};      ///< events consumed by the worker
  std::int64_t rejected{0};       ///< events shed by admission control
  std::int64_t rounds_closed{0};
  std::int64_t queue_depth{0};
  std::int64_t window_watermark{0};
  std::int64_t queue_high_watermark{0};  ///< cumulative max depth
  LatencySketchSnapshot queue_wait;      ///< cumulative submit->pop wait
  LatencySketchSnapshot round_latency;   ///< cumulative open->close wall
};

/// One closed window: deltas between two cumulative samples plus the
/// rates derived from the window span.
struct WindowStats {
  std::int64_t index{0};  ///< monotone window number, starts at 0
  std::uint64_t begin_ns{0};
  std::uint64_t end_ns{0};
  std::int64_t submitted{0};
  std::int64_t processed{0};
  std::int64_t rejected{0};
  std::int64_t rounds_closed{0};
  double events_per_sec{0.0};  ///< processed / window seconds
  double rounds_per_sec{0.0};
  /// rejected / (submitted + rejected); 0 when nothing was offered.
  double reject_rate{0.0};
  std::int64_t queue_depth{0};      ///< at the window's end
  std::int64_t queue_watermark{0};  ///< highest depth within the window
  LatencySketchSnapshot queue_wait;     ///< samples within the window
  LatencySketchSnapshot round_latency;  ///< samples within the window

  [[nodiscard]] double seconds() const {
    return static_cast<double>(end_ns - begin_ns) / 1e9;
  }
};

/// Turns successive LiveCumulative samples into WindowStats and retains
/// the most recent `capacity` windows. Single-threaded by design: only the
/// stats publisher rolls it.
class RollingWindowAggregator {
 public:
  explicit RollingWindowAggregator(std::uint64_t start_ns = 0,
                                   std::size_t capacity = 64);

  /// Closes the window [previous sample, now] and returns it. `now.at_ns`
  /// must not precede the previous sample.
  const WindowStats& roll(const LiveCumulative& now);

  [[nodiscard]] const std::deque<WindowStats>& windows() const {
    return windows_;
  }
  /// Index the next roll() will assign (== windows rolled so far).
  [[nodiscard]] std::int64_t next_index() const { return next_index_; }

 private:
  std::size_t capacity_;
  std::deque<WindowStats> windows_;
  LiveCumulative previous_;
  std::int64_t next_index_{0};
};

// ----------------------------------------------------------------- health

enum class HealthState {
  kHealthy,
  kSaturated,  ///< queue watermark dwelling near capacity
  kShedding,   ///< admission control rejecting traffic
  kStalled,    ///< backlogged queue, no forward progress
  /// The econ sentinel observed an invariant violation (payment below
  /// claimed cost, payment != critical value, ...). Worst state: a
  /// mispriced mechanism is a correctness bug, not a load condition, so
  /// it outranks every systems state and is sticky for the run.
  kDegradedEconomics,
};

[[nodiscard]] std::string_view to_string(HealthState state);

/// Severity order for aggregating shard states (degraded economics worst,
/// then stalled).
[[nodiscard]] HealthState worse(HealthState a, HealthState b);

struct HealthConfig {
  /// A window whose reject_rate exceeds this is shedding.
  double shed_reject_rate = 0.01;
  /// A window whose watermark reaches this fraction of queue capacity
  /// counts toward saturation dwell.
  double saturated_queue_fraction = 0.5;
  /// Consecutive qualifying windows before saturated/stalled is declared
  /// (one noisy window is not an incident).
  int dwell_windows = 2;
};

/// Classifies the newest windows of one lane. Stalled takes precedence
/// over shedding over saturated; with fewer than dwell_windows windows
/// only shedding can be declared.
[[nodiscard]] HealthState classify_health(
    const std::deque<WindowStats>& windows, std::int64_t queue_capacity,
    const HealthConfig& config = {});

}  // namespace mcs::obs
