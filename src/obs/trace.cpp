#include "obs/trace.hpp"

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace mcs::obs {

namespace {

thread_local TraceCollector* t_current_trace = nullptr;

std::int64_t elapsed_us(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

std::size_t TraceCollector::open_span(std::string_view name) {
  SpanRecord record;
  record.name = std::string(name);
  record.depth = static_cast<int>(open_stack_.size());
  record.parent =
      open_stack_.empty() ? -1 : static_cast<int>(open_stack_.back());
  record.start_us = elapsed_us(epoch_, std::chrono::steady_clock::now());
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(record));
  open_stack_.push_back(index);
  return index;
}

void TraceCollector::close_span(std::size_t index, std::int64_t duration_us) {
  MCS_EXPECTS(!open_stack_.empty() && open_stack_.back() == index,
              "trace spans must close in LIFO order");
  open_stack_.pop_back();
  spans_[index].duration_us = duration_us;
}

TraceCollector* current_trace() noexcept { return t_current_trace; }

ScopedTrace::ScopedTrace(TraceCollector* collector) noexcept
    : previous_(t_current_trace) {
  t_current_trace = collector;
}

ScopedTrace::~ScopedTrace() { t_current_trace = previous_; }

TraceSpan::TraceSpan(std::string_view name)
    : collector_(t_current_trace),
      metrics_on_(current_registry() != nullptr) {
  if (collector_ == nullptr && !metrics_on_) return;
  name_ = std::string(name);
  start_ = std::chrono::steady_clock::now();
  if (collector_ != nullptr) index_ = collector_->open_span(name_);
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr && !metrics_on_) return;
  const std::int64_t us =
      elapsed_us(start_, std::chrono::steady_clock::now());
  if (collector_ != nullptr) collector_->close_span(index_, us);
  if (metrics_on_) {
    if (MetricsRegistry* registry = current_registry()) {
      registry->histogram("span." + name_ + "_us")
          .observe(static_cast<double>(us));
    }
  }
}

ScopedTimer::ScopedTimer(std::string_view histogram_name)
    : enabled_(current_registry() != nullptr) {
  if (!enabled_) return;
  name_ = std::string(histogram_name);
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!enabled_) return;
  if (MetricsRegistry* registry = current_registry()) {
    registry->histogram(name_).observe(static_cast<double>(
        elapsed_us(start_, std::chrono::steady_clock::now())));
  }
}

}  // namespace mcs::obs
