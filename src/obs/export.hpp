// Exporters for the telemetry registry and trace: JSON (machine-readable
// run report, schema "mcs.telemetry.v1"), CSV (one row per metric sample
// point, for spreadsheets), and Prometheus text exposition format (for
// scrape-style tooling). All exporters render a deterministic order
// (snapshot maps are name-sorted), so golden tests and diff-based perf
// regression checks are stable.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs::obs {

/// Writes the registry (and optionally a trace) as one JSON object:
///   {"schema":"mcs.telemetry.v1","meta":{...},"counters":{...},
///    "gauges":{...},"histograms":{...},"trace":[...]}
/// Histogram buckets use Prometheus le semantics; the overflow bucket's
/// upper edge is the string "+Inf". `meta` lands as string fields under
/// "meta" (e.g. tool name, scenario path).
void write_metrics_json(
    std::ostream& os, const MetricsRegistry& registry,
    const TraceCollector* trace = nullptr,
    const std::map<std::string, std::string>& meta = {});

/// CSV with header kind,name,field,value -- counters one row each,
/// gauges one row each, histograms one row per (count|sum|min|max) plus
/// one per bucket ("le=<edge>").
void write_metrics_csv(std::ostream& os, const MetricsRegistry& registry);

/// Sanitizes a dotted metric name into a legal Prometheus identifier:
/// prefixes "mcs_" and maps every byte outside [a-zA-Z0-9_:] to '_'
/// (exposition-format grammar [a-zA-Z_:][a-zA-Z0-9_:]*). Total: arbitrary
/// input -- including user-influenced mechanism or shard strings -- always
/// yields a scrapable name.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Escapes a string for use inside a quoted Prometheus label value
/// (backslash, double-quote, and newline per the text-format spec).
[[nodiscard]] std::string prometheus_label_value(std::string_view value);

/// Prometheus text exposition format. Metric names are sanitized via
/// prometheus_name(); histograms expand to _bucket/_sum/_count series.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);

/// Human-readable indented span tree:
///   run                          12.3 ms
///     allocation                  4.5 ms
///     payments                    7.8 ms
void render_trace_text(std::ostream& os, const TraceCollector& trace);

/// Chrome Trace Event Format (the JSON-object flavour with a "traceEvents"
/// array of complete "X" events), loadable directly in Perfetto or
/// chrome://tracing. One event per span, in the collector's preorder, with
/// ts/dur in microseconds relative to the collector's epoch; depth and
/// parent index travel in "args" so the exported tree is loss-free with
/// respect to render_trace_text. `meta` lands under "otherData".
void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans,
                        const std::map<std::string, std::string>& meta = {});
void write_chrome_trace(std::ostream& os, const TraceCollector& trace,
                        const std::map<std::string, std::string>& meta = {});

/// One complete ("X") event of a multi-lane Chrome trace, with explicit
/// pid/tid lane placement and optional flow linkage. A non-negative
/// flow_out emits a flow-start ("s") record at the span's end; a
/// non-negative flow_in emits a flow-finish ("f", bp "e") record at the
/// span's start -- Perfetto draws an arrow between the two spans carrying
/// the same flow id (we use the round id, so a round's producer-side
/// queue span links to its shard-worker timeline).
struct ChromeEvent {
  std::string name;
  std::int64_t pid{1};
  std::int64_t tid{1};
  std::int64_t ts_us{0};
  std::int64_t dur_us{0};
  std::int64_t flow_out{-1};
  std::int64_t flow_in{-1};
};

/// Display name of one pid/tid lane (rendered as a thread_name "M"
/// metadata record, so shards get labelled tracks).
struct ChromeLane {
  std::int64_t pid{1};
  std::int64_t tid{1};
  std::string name;
};

/// Multi-lane Chrome Trace Event Format: thread_name metadata for each
/// lane, then the events in the order given (callers sort for
/// determinism), with flow records interleaved after their spans. The
/// single-lane SpanRecord overload above is untouched and byte-stable.
void write_chrome_trace_events(
    std::ostream& os, const std::vector<ChromeLane>& lanes,
    const std::vector<ChromeEvent>& events,
    const std::map<std::string, std::string>& meta = {});

}  // namespace mcs::obs
