#include "obs/event_log.hpp"

#include "common/assert.hpp"
#include "io/json.hpp"

namespace mcs::obs {

namespace {

void write_value(io::JsonWriter& json, const Event::Value& value) {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          json.value(v);
        } else if constexpr (std::is_same_v<T, double>) {
          json.value(v);
        } else if constexpr (std::is_same_v<T, bool>) {
          json.value(v);
        } else if constexpr (std::is_same_v<T, Money>) {
          // Exact decimal string: replay and goldens byte-compare amounts.
          json.value(v.to_string());
        } else if constexpr (std::is_same_v<T, std::string>) {
          json.value(v);
        } else {
          json.begin_array();
          for (const std::int64_t item : v) json.value(item);
          json.end_array();
        }
      },
      value);
}

}  // namespace

void write_event_json(std::ostream& os, const Event& event,
                      std::uint64_t seq) {
  io::JsonWriter json(os);
  json.begin_object();
  json.field("seq", static_cast<std::int64_t>(seq));
  json.field("type", event.type);
  if (event.slot >= 0) {
    json.field("slot", static_cast<std::int64_t>(event.slot));
  }
  if (event.phone >= 0) {
    json.field("phone", static_cast<std::int64_t>(event.phone));
  }
  if (event.task >= 0) {
    json.field("task", static_cast<std::int64_t>(event.task));
  }
  for (const auto& [key, value] : event.attrs) {
    json.key(key);
    write_value(json, value);
  }
  json.end_object();
}

// ---------------------------------------------------------------- sinks

void JsonlEventSink::append(const Event& event, std::uint64_t seq) {
  write_event_json(os_, event, seq);
  os_ << '\n';
}

RingEventSink::RingEventSink(std::size_t capacity) : capacity_(capacity) {
  MCS_EXPECTS(capacity >= 1, "ring sink capacity must be >= 1");
  ring_.reserve(capacity);
}

void RingEventSink::append(const Event& event, std::uint64_t seq) {
  (void)seq;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<std::size_t>(appended_ % capacity_)] = event;
  }
  ++appended_;
}

std::vector<Event> RingEventSink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (appended_ <= capacity_) return ring_;
  // Unroll the ring: oldest retained event first.
  std::vector<Event> ordered;
  ordered.reserve(capacity_);
  const std::size_t head = static_cast<std::size_t>(appended_ % capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    ordered.push_back(ring_[(head + i) % capacity_]);
  }
  return ordered;
}

std::uint64_t RingEventSink::total_appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

// ------------------------------------------------------------- EventLog

EventLog::EventLog(EventSink* sink) : sink_(sink) {
  MCS_EXPECTS(sink != nullptr, "EventLog requires a sink");
  append(Event("log_header").with("schema", std::string(kSchema)));
}

void EventLog::append(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_->append(event, next_seq_);
  ++next_seq_;
}

std::uint64_t EventLog::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

// -------------------------------------------------------- current log

namespace {
thread_local EventLog* t_current_event_log = nullptr;
}  // namespace

EventLog* current_event_log() noexcept { return t_current_event_log; }

ScopedEventLog::ScopedEventLog(EventLog* log) noexcept
    : previous_(t_current_event_log) {
  t_current_event_log = log;
}

ScopedEventLog::~ScopedEventLog() { t_current_event_log = previous_; }

}  // namespace mcs::obs
