#include "obs/latency_sketch.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace mcs::obs {

namespace sketch_detail {

std::size_t bucket_of(std::uint64_t ns) noexcept {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  // bit_width >= 5 here; the top 4 bits after the leading one pick the
  // linear sub-bucket within the octave.
  const int width = std::bit_width(ns);
  const std::size_t octave = static_cast<std::size_t>(width - 4);
  const std::uint64_t sub = (ns >> (width - 5)) - kSubBuckets;
  return octave * kSubBuckets + static_cast<std::size_t>(sub);
}

std::uint64_t bucket_lower_edge(std::size_t bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;
  const std::size_t octave = bucket / kSubBuckets;
  const std::uint64_t sub = bucket % kSubBuckets;
  return (kSubBuckets + sub) << (octave - 1);
}

std::uint64_t bucket_upper_edge(std::size_t bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;
  const std::size_t octave = bucket / kSubBuckets;
  const std::uint64_t sub = bucket % kSubBuckets;
  return ((kSubBuckets + sub + 1) << (octave - 1)) - 1;
}

}  // namespace sketch_detail

// ------------------------------------------------------------- live sketch

void LatencySketch::record_ns(std::uint64_t ns) noexcept {
  counts_[sketch_detail::bucket_of(ns)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

LatencySketchSnapshot LatencySketch::snapshot() const {
  LatencySketchSnapshot snap;
  std::size_t highest = 0;
  std::vector<std::uint64_t> counts(sketch_detail::kBucketCount, 0);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    if (counts[b] > 0) highest = b + 1;
  }
  counts.resize(highest);
  snap.counts = std::move(counts);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed));
  snap.min_ns = snap.count == 0 ? 0 : min_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  return snap;
}

// --------------------------------------------------------------- snapshot

double LatencySketchSnapshot::quantile_ns(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  // Adapt the bucket counts to the counter plane's HistogramData shape:
  // boundaries are the (inclusive) upper edges of all buckets but the
  // last, whose role as the "overflow" bucket estimate_quantile closes
  // with the tracked max.
  MetricsSnapshot::HistogramData data;
  data.count = static_cast<std::int64_t>(count);
  data.sum = sum_ns;
  data.min = static_cast<double>(min_ns);
  data.max = static_cast<double>(max_ns);
  data.bucket_counts.reserve(counts.size());
  for (const std::uint64_t c : counts) {
    data.bucket_counts.push_back(static_cast<std::int64_t>(c));
  }
  if (counts.empty()) data.bucket_counts.push_back(data.count);
  data.boundaries.reserve(data.bucket_counts.size() - 1);
  for (std::size_t b = 0; b + 1 < data.bucket_counts.size(); ++b) {
    data.boundaries.push_back(
        static_cast<double>(sketch_detail::bucket_upper_edge(b)));
  }
  return estimate_quantile(data, q);
}

LatencySketchSnapshot LatencySketchSnapshot::delta_since(
    const LatencySketchSnapshot& earlier) const {
  MCS_EXPECTS(earlier.count <= count && earlier.counts.size() <= counts.size(),
              "sketch delta_since requires an earlier snapshot of the same "
              "sketch");
  LatencySketchSnapshot delta;
  delta.counts.resize(counts.size(), 0);
  std::size_t highest = 0;
  std::size_t lowest = counts.size();
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t before =
        b < earlier.counts.size() ? earlier.counts[b] : 0;
    delta.counts[b] = counts[b] - before;
    if (delta.counts[b] > 0) {
      highest = b + 1;
      lowest = std::min(lowest, b);
    }
  }
  delta.counts.resize(highest);
  delta.count = count - earlier.count;
  delta.sum_ns = sum_ns - earlier.sum_ns;
  // A window's true extrema are not recoverable from cumulative extrema;
  // the occupied bucket edges bound them within the sketch's resolution.
  if (delta.count > 0) {
    delta.min_ns = sketch_detail::bucket_lower_edge(lowest);
    delta.max_ns = sketch_detail::bucket_upper_edge(highest - 1);
  }
  return delta;
}

void LatencySketchSnapshot::merge(const LatencySketchSnapshot& other) {
  if (other.count == 0) return;
  if (other.counts.size() > counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (std::size_t b = 0; b < other.counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  min_ns = count == 0 ? other.min_ns : std::min(min_ns, other.min_ns);
  max_ns = count == 0 ? other.max_ns : std::max(max_ns, other.max_ns);
  count += other.count;
  sum_ns += other.sum_ns;
}

}  // namespace mcs::obs
