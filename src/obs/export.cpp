#include "obs/export.hpp"

#include <cstdio>
#include <string_view>
#include <vector>

#include "io/csv.hpp"
#include "io/json.hpp"

namespace mcs::obs {

namespace {

std::string format_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

void write_histogram_json(io::JsonWriter& json,
                          const MetricsSnapshot::HistogramData& data) {
  json.begin_object();
  json.field("count", data.count);
  json.field("sum", data.sum);
  if (data.count > 0) {
    json.field("min", data.min);
    json.field("max", data.max);
  }
  json.key("buckets").begin_array();
  for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
    json.begin_object();
    if (i < data.boundaries.size()) {
      json.field("le", data.boundaries[i]);
    } else {
      json.field("le", "+Inf");
    }
    json.field("count", data.bucket_counts[i]);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  // Exposition-format grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. The fixed
  // "mcs_" prefix satisfies the first-character rule, so every remaining
  // byte only needs the tail alphabet; anything else (dots, dashes,
  // spaces, UTF-8 from user-influenced strings) collapses to '_'.
  std::string out = "mcs_";
  out.reserve(name.size() + 4);
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  // Label values admit any UTF-8 but the text format requires escaping
  // backslash, double-quote, and newline inside the quoted value.
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry,
                        const TraceCollector* trace,
                        const std::map<std::string, std::string>& meta) {
  const MetricsSnapshot snap = registry.snapshot();
  io::JsonWriter json(os);
  json.begin_object();
  json.field("schema", "mcs.telemetry.v1");
  if (!meta.empty()) {
    json.key("meta").begin_object();
    for (const auto& [key, value] : meta) json.field(key, value);
    json.end_object();
  }
  json.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) json.field(name, value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) json.field(name, value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, data] : snap.histograms) {
    json.key(name);
    write_histogram_json(json, data);
  }
  json.end_object();
  if (trace != nullptr) {
    json.key("trace").begin_array();
    for (const SpanRecord& span : trace->spans()) {
      json.begin_object();
      json.field("name", span.name);
      json.field("depth", static_cast<std::int64_t>(span.depth));
      json.field("parent", static_cast<std::int64_t>(span.parent));
      json.field("start_us", span.start_us);
      json.field("duration_us", span.duration_us);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  os << '\n';
}

void write_metrics_csv(std::ostream& os, const MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  io::CsvWriter csv(os);
  csv.set_header({"kind", "name", "field", "value"});
  for (const auto& [name, value] : snap.counters) {
    csv.write_row({"counter", name, "value", std::to_string(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    csv.write_row({"gauge", name, "value", format_number(value)});
  }
  for (const auto& [name, data] : snap.histograms) {
    csv.write_row({"histogram", name, "count", std::to_string(data.count)});
    csv.write_row({"histogram", name, "sum", format_number(data.sum)});
    if (data.count > 0) {
      csv.write_row({"histogram", name, "min", format_number(data.min)});
      csv.write_row({"histogram", name, "max", format_number(data.max)});
    }
    for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
      const std::string edge = i < data.boundaries.size()
                                   ? format_number(data.boundaries[i])
                                   : std::string("+Inf");
      csv.write_row({"histogram", name, "le=" + edge,
                     std::to_string(data.bucket_counts[i])});
    }
  }
}

namespace {

/// "# HELP <id> <text>" when a description was registered for `name`.
/// Prometheus HELP text escapes backslash and newline; registered
/// descriptions are one-line by convention, escape anyway.
void write_prometheus_help(std::ostream& os, const MetricsSnapshot& snap,
                           const std::string& name, const std::string& id) {
  const auto it = snap.help.find(name);
  if (it == snap.help.end()) return;
  os << "# HELP " << id << ' ';
  for (const char ch : it->second) {
    if (ch == '\\') {
      os << "\\\\";
    } else if (ch == '\n') {
      os << "\\n";
    } else {
      os << ch;
    }
  }
  os << '\n';
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string id = prometheus_name(name);
    write_prometheus_help(os, snap, name, id);
    os << "# TYPE " << id << " counter\n" << id << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string id = prometheus_name(name);
    write_prometheus_help(os, snap, name, id);
    os << "# TYPE " << id << " gauge\n"
       << id << ' ' << format_number(value) << '\n';
  }
  for (const auto& [name, data] : snap.histograms) {
    const std::string id = prometheus_name(name);
    write_prometheus_help(os, snap, name, id);
    os << "# TYPE " << id << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
      cumulative += data.bucket_counts[i];
      const std::string edge = i < data.boundaries.size()
                                   ? format_number(data.boundaries[i])
                                   : std::string("+Inf");
      os << id << "_bucket{le=\"" << edge << "\"} " << cumulative << '\n';
    }
    os << id << "_sum " << format_number(data.sum) << '\n'
       << id << "_count " << data.count << '\n';
  }
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans,
                        const std::map<std::string, std::string>& meta) {
  io::JsonWriter json(os);
  json.begin_object();
  json.key("traceEvents").begin_array();
  // Metadata record naming the single process/thread every span lands on.
  json.begin_object();
  json.field("name", "process_name");
  json.field("ph", "M");
  json.field("pid", std::int64_t{1});
  json.field("tid", std::int64_t{1});
  json.key("args").begin_object();
  json.field("name", "mcs");
  json.end_object();
  json.end_object();
  for (const SpanRecord& span : spans) {
    json.begin_object();
    json.field("name", span.name);
    json.field("cat", "mcs");
    json.field("ph", "X");
    json.field("ts", span.start_us);
    json.field("dur", span.duration_us);
    json.field("pid", std::int64_t{1});
    json.field("tid", std::int64_t{1});
    json.key("args").begin_object();
    json.field("depth", static_cast<std::int64_t>(span.depth));
    json.field("parent", static_cast<std::int64_t>(span.parent));
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  if (!meta.empty()) {
    json.key("otherData").begin_object();
    for (const auto& [key, value] : meta) json.field(key, value);
    json.end_object();
  }
  json.end_object();
  os << '\n';
}

void write_chrome_trace(std::ostream& os, const TraceCollector& trace,
                        const std::map<std::string, std::string>& meta) {
  write_chrome_trace(os, trace.spans(), meta);
}

void write_chrome_trace_events(
    std::ostream& os, const std::vector<ChromeLane>& lanes,
    const std::vector<ChromeEvent>& events,
    const std::map<std::string, std::string>& meta) {
  io::JsonWriter json(os);
  json.begin_object();
  json.key("traceEvents").begin_array();
  json.begin_object();
  json.field("name", "process_name");
  json.field("ph", "M");
  json.field("pid", std::int64_t{1});
  json.field("tid", std::int64_t{1});
  json.key("args").begin_object();
  json.field("name", "mcs");
  json.end_object();
  json.end_object();
  for (const ChromeLane& lane : lanes) {
    json.begin_object();
    json.field("name", "thread_name");
    json.field("ph", "M");
    json.field("pid", lane.pid);
    json.field("tid", lane.tid);
    json.key("args").begin_object();
    json.field("name", lane.name);
    json.end_object();
    json.end_object();
  }
  for (const ChromeEvent& event : events) {
    json.begin_object();
    json.field("name", event.name);
    json.field("cat", "mcs");
    json.field("ph", "X");
    json.field("ts", event.ts_us);
    json.field("dur", event.dur_us);
    json.field("pid", event.pid);
    json.field("tid", event.tid);
    json.end_object();
    if (event.flow_out >= 0) {
      json.begin_object();
      json.field("name", "round");
      json.field("cat", "mcs");
      json.field("ph", "s");
      json.field("id", event.flow_out);
      json.field("ts", event.ts_us + event.dur_us);
      json.field("pid", event.pid);
      json.field("tid", event.tid);
      json.end_object();
    }
    if (event.flow_in >= 0) {
      json.begin_object();
      json.field("name", "round");
      json.field("cat", "mcs");
      json.field("ph", "f");
      json.field("bp", "e");
      json.field("id", event.flow_in);
      json.field("ts", event.ts_us);
      json.field("pid", event.pid);
      json.field("tid", event.tid);
      json.end_object();
    }
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  if (!meta.empty()) {
    json.key("otherData").begin_object();
    for (const auto& [key, value] : meta) json.field(key, value);
    json.end_object();
  }
  json.end_object();
  os << '\n';
}

void render_trace_text(std::ostream& os, const TraceCollector& trace) {
  for (const SpanRecord& span : trace.spans()) {
    for (int i = 0; i < span.depth; ++i) os << "  ";
    os << span.name << "  ";
    const double us = static_cast<double>(span.duration_us);
    char buf[64];
    if (us >= 1e6) {
      std::snprintf(buf, sizeof buf, "%.2f s", us / 1e6);
    } else if (us >= 1e3) {
      std::snprintf(buf, sizeof buf, "%.2f ms", us / 1e3);
    } else {
      std::snprintf(buf, sizeof buf, "%lld us",
                    static_cast<long long>(span.duration_us));
    }
    os << buf << '\n';
  }
}

}  // namespace mcs::obs
