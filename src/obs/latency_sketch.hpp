// Log-bucketed latency sketch for the live timing plane.
//
// An HDR-histogram-style sketch over nanosecond durations: values below 16
// are counted exactly, everything above lands in one of 16 linear
// sub-buckets per power of two, so the relative quantile error is bounded
// by 1/16 (6.25%) across the full uint64 range. Recording is a handful of
// relaxed atomic operations (no locks, no allocation), cheap enough to sit
// on the serve engine's per-event path; snapshots are taken concurrently
// by the stats publisher thread.
//
// Sketches are mergeable (bucket-wise sums, associative and commutative),
// and snapshots additionally support delta_since() so a rolling window can
// subtract the cumulative sketch at the previous window edge. Quantile
// extraction converts the bucket counts into the same
// MetricsSnapshot::HistogramData shape the counter plane exports and
// reuses obs::estimate_quantile, so both planes share one definition of
// p50/p95/p99.
//
// This type is part of the wall-clock timing plane: it must never be
// registered in a MetricsRegistry that bench-diff gates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace mcs::obs {

namespace sketch_detail {
/// 16 sub-buckets per octave above the exact range [0, 16).
inline constexpr int kSubBuckets = 16;
/// Highest index is reached at v = 2^64 - 1 (bit width 64).
inline constexpr std::size_t kBucketCount =
    static_cast<std::size_t>(kSubBuckets) * 61;  // 16 * (64 - 4 + 1)

/// Bucket index of a nanosecond value. Monotone in `ns`.
[[nodiscard]] std::size_t bucket_of(std::uint64_t ns) noexcept;
/// Largest value the bucket covers (inclusive; le-semantics upper edge).
[[nodiscard]] std::uint64_t bucket_upper_edge(std::size_t bucket) noexcept;
/// Smallest value the bucket covers.
[[nodiscard]] std::uint64_t bucket_lower_edge(std::size_t bucket) noexcept;
}  // namespace sketch_detail

/// Point-in-time copy of a sketch: a value type that can be merged,
/// subtracted (delta_since), and queried for quantiles.
struct LatencySketchSnapshot {
  /// Per-bucket counts, trimmed after the highest non-empty bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t count{0};
  double sum_ns{0.0};
  /// Exact observed extrema (cumulative snapshots). Deltas reconstruct
  /// them from the occupied bucket edges instead (documented 6.25% bound).
  std::uint64_t min_ns{0};
  std::uint64_t max_ns{0};

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0 : sum_ns / static_cast<double>(count);
  }

  /// Bucket-interpolated quantile in nanoseconds via estimate_quantile
  /// (NaN when empty, exact for a single sample).
  [[nodiscard]] double quantile_ns(double q) const;
  [[nodiscard]] double quantile_us(double q) const {
    return quantile_ns(q) / 1000.0;
  }

  /// Samples recorded between `earlier` and this snapshot, both taken from
  /// the same sketch (bucket-wise subtraction). Extrema of the delta are
  /// re-derived from its occupied bucket edges.
  [[nodiscard]] LatencySketchSnapshot delta_since(
      const LatencySketchSnapshot& earlier) const;

  /// Bucket-wise sum (associative, commutative) -- for aggregating shard
  /// sketches into an engine-wide view.
  void merge(const LatencySketchSnapshot& other);
};

/// The live, concurrently-written sketch. record_ns is safe from any
/// number of threads; snapshot() is safe concurrently with recording.
class LatencySketch {
 public:
  LatencySketch() = default;
  LatencySketch(const LatencySketch&) = delete;
  LatencySketch& operator=(const LatencySketch&) = delete;

  void record_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] LatencySketchSnapshot snapshot() const;
  /// Total samples recorded so far (cheaper than a full snapshot).
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, sketch_detail::kBucketCount>
      counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ULL};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace mcs::obs
