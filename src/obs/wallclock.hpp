// Injectable monotonic wall clock for the live timing plane.
//
// The deterministic counter plane (obs/metrics.hpp) must never depend on
// wall time -- bench-diff compares its counters bit for bit. The live
// timing plane (obs/latency_sketch.hpp, obs/rolling_window.hpp,
// serve/telemetry.hpp) is the opposite: it exists to measure wall-clock
// latency while serving. Every component of that plane reads time through
// this interface so tests can drive it with a FakeClock and get
// byte-reproducible snapshots, while production uses the steady clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mcs::obs {

/// Monotonic nanosecond clock. Implementations must never go backwards.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

/// std::chrono::steady_clock, as nanoseconds since an arbitrary epoch.
class SteadyClock final : public MonotonicClock {
 public:
  [[nodiscard]] std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Process-wide steady clock instance (the default everywhere a
/// MonotonicClock* is optional).
[[nodiscard]] inline MonotonicClock& steady_clock() {
  static SteadyClock clock;
  return clock;
}

/// Manually advanced clock for tests. Thread-safe; advance() never moves
/// time backwards by construction.
class FakeClock final : public MonotonicClock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  [[nodiscard]] std::uint64_t now_ns() override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void advance_ms(std::uint64_t delta) { advance_ns(delta * 1'000'000ULL); }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace mcs::obs
