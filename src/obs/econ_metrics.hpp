// Economic metrics primitives for the live mechanism-health plane.
//
// The paper's headline claims are economic -- truthfulness (Theorem 4),
// individual rationality (Theorems 2/5), bounded overpayment (Figs. 9-11)
// -- yet the rest of src/obs watches *systems* signals only. This header
// is the economics vocabulary shared by the offline analysis layer and
// the live serve plane: exact-Money-in, double-out summary statistics
// (overpayment ratio, Jain payment fairness, task coverage) plus the
// cumulative-sample / rolling-window machinery that turns per-round
// observations into per-window deltas, mirroring obs/rolling_window.hpp
// and reusing the LatencySketch for ratio distributions.
//
// Layering: this file sits in obs and speaks only common vocabulary
// (Money, integers). Scenario-aware per-round computation lives in
// analysis/; the serve-side recording lives in serve/econ_telemetry.hpp.
//
// Everything windowed here is wall-clock territory: none of it may feed
// the deterministic counter plane that bench-diff gates. The single
// exception -- the `econ.violations` registry counter -- is bumped by the
// sentinel in serve/econ_telemetry.cpp only when an invariant actually
// breaks, so truthful traffic leaves the counter plane untouched.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/money.hpp"
#include "obs/latency_sketch.hpp"
#include "obs/rolling_window.hpp"

namespace mcs::obs {

// ------------------------------------------------------- pure econ math

/// Overpayment ratio sigma = (payment - cost) / cost (Definition 11).
/// Exact-Money inputs; 0.0 when cost is zero (no winners, no sigma).
[[nodiscard]] double overpayment_ratio(Money total_payment, Money total_cost);

/// Jain's fairness index over a payment vector:
/// (sum x)^2 / (n * sum x^2). 1.0 = perfectly even, 1/n = one phone takes
/// everything. Empty or all-zero vectors return 1.0 (nothing was uneven).
[[nodiscard]] double jain_fairness(const std::vector<Money>& payments);

/// Task coverage: allocated / total; 1.0 when there were no tasks.
[[nodiscard]] double coverage_rate(std::int64_t allocated, std::int64_t total);

// ------------------------------------------- ratio <-> sketch conversion

/// Dimensionless ratios ride in LatencySketch buckets as micro-ratios
/// (ratio * 1e6 rounded), the same fixed-point scale Money uses, so one
/// sketch implementation serves both planes. Negative ratios clamp to 0
/// (the sketch is unsigned; economically sane ratios are nonnegative).
[[nodiscard]] std::uint64_t ratio_to_sketch_units(double ratio);

/// Inverse of ratio_to_sketch_units for quantile readouts.
[[nodiscard]] double sketch_units_to_ratio(double units);

// ------------------------------------------------ cumulative + windows

/// Cumulative economic totals of one lane (e.g. one serve shard) at a
/// sample instant. All fields are monotone; Money totals travel as exact
/// micro counts so window deltas subtract exactly.
struct EconCumulative {
  std::uint64_t at_ns{0};
  std::int64_t rounds{0};          ///< rounds observed by the econ plane
  std::int64_t rounds_skipped{0};  ///< closed rounds the plane could not audit
  std::int64_t tasks{0};
  std::int64_t tasks_allocated{0};
  std::int64_t winners{0};
  std::int64_t payment_micros{0};       ///< sum of payments (exact micros)
  std::int64_t claimed_cost_micros{0};  ///< sum of winners' claimed costs
  /// Reference payment under the per-slot second-price baseline.
  std::int64_t second_price_payment_micros{0};
  /// Reference payment under offline VCG (small rounds only).
  std::int64_t vcg_payment_micros{0};
  std::int64_t vcg_rounds{0};    ///< rounds the VCG reference covered
  std::int64_t probe_rounds{0};  ///< rounds the deep sentinel sampled
  std::int64_t probe_checks{0};  ///< individual winner probes executed
  std::int64_t violations{0};    ///< sentinel violations (any kind)
  LatencySketchSnapshot fairness;     ///< per-round Jain index, micro-scaled
  LatencySketchSnapshot overpayment;  ///< per-round sigma, micro-scaled
};

/// One closed econ window: deltas between two cumulative samples plus the
/// ratios derived from the deltas.
struct EconWindowStats {
  std::int64_t index{0};
  std::uint64_t begin_ns{0};
  std::uint64_t end_ns{0};
  std::int64_t rounds{0};
  std::int64_t rounds_skipped{0};
  std::int64_t tasks{0};
  std::int64_t tasks_allocated{0};
  std::int64_t winners{0};
  std::int64_t payment_micros{0};
  std::int64_t claimed_cost_micros{0};
  std::int64_t second_price_payment_micros{0};
  std::int64_t vcg_payment_micros{0};
  std::int64_t vcg_rounds{0};
  std::int64_t probe_rounds{0};
  std::int64_t probe_checks{0};
  std::int64_t violations{0};
  double rounds_per_sec{0.0};
  double coverage{0.0};            ///< tasks_allocated / tasks of the window
  double overpayment_ratio{0.0};   ///< sigma over the window's money deltas
  LatencySketchSnapshot fairness;     ///< per-round samples in the window
  LatencySketchSnapshot overpayment;  ///< per-round samples in the window

  [[nodiscard]] double seconds() const {
    return static_cast<double>(end_ns - begin_ns) / 1e9;
  }
};

/// Turns successive EconCumulative samples into EconWindowStats and keeps
/// the most recent `capacity` windows -- the economic twin of
/// RollingWindowAggregator. Single-threaded by design: only the stats
/// publisher rolls it.
class EconWindowAggregator {
 public:
  explicit EconWindowAggregator(std::uint64_t start_ns = 0,
                                std::size_t capacity = 64);

  /// Closes the window [previous sample, now] and returns it. `now.at_ns`
  /// must not precede the previous sample.
  const EconWindowStats& roll(const EconCumulative& now);

  [[nodiscard]] const std::deque<EconWindowStats>& windows() const {
    return windows_;
  }
  [[nodiscard]] std::int64_t next_index() const { return next_index_; }

 private:
  std::size_t capacity_;
  std::deque<EconWindowStats> windows_;
  EconCumulative previous_;
  std::int64_t next_index_{0};
};

/// Economic health of one lane: any sentinel violation -- ever -- means
/// the mechanism is mispriced, so the state is sticky (degraded economics
/// cannot heal by waiting; it names a correctness bug, not load).
[[nodiscard]] HealthState classify_econ_health(std::int64_t total_violations);

}  // namespace mcs::obs
