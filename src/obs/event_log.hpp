// Structured decision event log -- the "flight recorder" of the auction
// stack and the third observability pillar next to the metrics registry
// and the phase traces.
//
// Metrics say *how much* work a run did and traces say *where the time
// went*; neither can answer "why was phone 3 dropped in slot 2" or "which
// counterfactual winner set phone 1's payment to 9" after the run ended.
// The event log records those decisions as append-only structured records
// (JSONL, schema "mcs.events.v1"): bid admissions and reserve rejections,
// per-slot candidate pools, winner selections with runner-up weights,
// every critical-value bisection probe with its bracket, and each payment
// with its derivation. The log is complete enough to *replay* a run
// (mcs_cli replay) and to narrate one bidder's round (mcs_cli explain).
//
// Design constraints mirror obs/metrics.hpp exactly:
//
//  1. Zero cost when disabled. No log installed for the current thread
//     (ScopedEventLog) means every instrumentation site is one
//     thread-local load and a branch; events are only *built* inside the
//     branch, so the disabled path performs no allocations. Use the
//     log_event() helper to make that structure explicit.
//  2. Deterministic output. Event fields serialize in a fixed order and
//     Money amounts travel as exact decimal strings, so logs of the same
//     run are byte-identical -- the property the replay oracle and the
//     golden tests rely on.
//  3. This layer only speaks the common vocabulary (slots, phone/task
//     ids, Money). Higher layers attach their record types by name;
//     docs/observability.md is the registry of record types.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/money.hpp"

namespace mcs::obs {

/// One structured decision record. `type` names the record kind
/// ("critical_probe", "payment", ...); slot/phone/task are the common
/// correlation keys (negative = not applicable); everything else rides in
/// `attrs`, serialized in insertion order.
struct Event {
  /// Attribute value: integers, reals, flags, exact money amounts
  /// (serialized as decimal strings), free text, or an id list.
  using Value = std::variant<std::int64_t, double, bool, Money, std::string,
                             std::vector<std::int64_t>>;

  std::string type;
  std::int32_t slot{-1};
  std::int32_t phone{-1};
  std::int32_t task{-1};
  std::vector<std::pair<std::string, Value>> attrs;

  Event() = default;
  explicit Event(std::string type_name) : type(std::move(type_name)) {}

  /// Fluent attribute append: Event("x").with("k", 1).with("m", money).
  Event&& with(std::string key, Value value) && {
    attrs.emplace_back(std::move(key), std::move(value));
    return std::move(*this);
  }
  Event& with(std::string key, Value value) & {
    attrs.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  friend bool operator==(const Event&, const Event&) = default;
};

/// Serializes one event as a single JSON object (no trailing newline).
/// Field order is fixed: seq, type, then slot/phone/task when set, then
/// attrs in insertion order. Money renders as an exact decimal string.
void write_event_json(std::ostream& os, const Event& event, std::uint64_t seq);

/// Where appended events go. Implementations must tolerate being called
/// under the owning EventLog's lock (keep append cheap).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void append(const Event& event, std::uint64_t seq) = 0;
};

/// Writes one JSON line per event to a stream ("events.jsonl").
class JsonlEventSink final : public EventSink {
 public:
  explicit JsonlEventSink(std::ostream& os) : os_(os) {}
  void append(const Event& event, std::uint64_t seq) override;

 private:
  std::ostream& os_;
};

/// Bounded in-memory ring: keeps the most recent `capacity` events (the
/// "black box" for tests and in-process inspection). Oldest events are
/// overwritten once full.
class RingEventSink final : public EventSink {
 public:
  explicit RingEventSink(std::size_t capacity);
  void append(const Event& event, std::uint64_t seq) override;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  /// Total events ever appended (>= events().size()).
  [[nodiscard]] std::uint64_t total_appended() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;  // ring_[seq % capacity_]
  std::uint64_t appended_{0};
};

/// Appends events to a sink with a process-ordered sequence number. On
/// construction emits the schema header record
///   {"seq":0,"type":"log_header","schema":"mcs.events.v1"}
/// so every log file self-identifies. Thread-safe: a single log may be
/// shared, appends are serialized.
class EventLog {
 public:
  static constexpr std::string_view kSchema = "mcs.events.v1";

  /// `sink` is non-owning and must outlive the log.
  explicit EventLog(EventSink* sink);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void append(Event event);

  /// Events appended so far, header included.
  [[nodiscard]] std::uint64_t count() const;

 private:
  EventSink* sink_;
  mutable std::mutex mutex_;
  std::uint64_t next_seq_{0};
};

/// Event log installed for the current thread, or nullptr (recording off).
[[nodiscard]] EventLog* current_event_log() noexcept;

/// RAII install/restore of the current thread's event log, nesting like
/// ScopedRegistry. Passing nullptr *suppresses* recording within the scope
/// -- how counterfactual re-runs (payment probes) keep their inner
/// allocation decisions out of the primary trail.
class ScopedEventLog {
 public:
  explicit ScopedEventLog(EventLog* log) noexcept;
  ~ScopedEventLog();
  ScopedEventLog(const ScopedEventLog&) = delete;
  ScopedEventLog& operator=(const ScopedEventLog&) = delete;

 private:
  EventLog* previous_;
};

/// Deferred-build append: the factory runs -- and the event is built --
/// only when a log is installed, so instrumented hot paths stay
/// allocation-free when recording is off.
///   obs::log_event([&] { return Event("task_assigned").with(...); });
template <typename MakeEvent>
inline void log_event(MakeEvent&& make) {
  if (EventLog* log = current_event_log()) {
    log->append(std::forward<MakeEvent>(make)());
  }
}

}  // namespace mcs::obs
