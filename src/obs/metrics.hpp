// Telemetry metrics: counters, gauges, and fixed-bucket histograms.
//
// The paper argues for its mechanisms on computational-efficiency grounds
// (Theorems 3 and 7); this registry is how the repo observes where the work
// goes. Design constraints, in order:
//
//  1. Zero cost when disabled. Nothing is recorded unless a registry has
//     been installed for the current thread (ScopedRegistry); the fast path
//     of every helper is one thread-local load and a branch, so hot loops
//     (Hungarian relabels, SPFA pops) can instrument unconditionally.
//  2. Deterministic parallel reduction. Each simulate_parallel worker
//     records into its own registry; merge() is associative and
//     commutative for counters and histograms (sums), so the reduced
//     counters are identical to a single-threaded run over the same
//     repetitions -- the same identity RunningStats::merge guarantees.
//  3. Thread safety anyway. A registry may be shared (the CLI installs one
//     registry for the whole process lifetime), so individual instruments
//     are safe for concurrent recording.
//
// Naming convention (docs/observability.md): dot-separated lowercase
// "<layer>.<component>.<what>", e.g. "matching.hungarian.iterations".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::obs {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written instantaneous value (e.g. a configuration knob or pool
/// size snapshot). merge() keeps the destination's value when both sides
/// were ever set ("first writer wins" along the reduction order), which is
/// associative.
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_value() const noexcept {
    return set_.load(std::memory_order_relaxed);
  }
  /// Last set value; 0.0 when never set.
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket histogram (Prometheus "le" semantics: bucket i counts
/// samples <= boundaries[i]; one implicit overflow bucket catches the
/// rest). Also tracks count/sum/min/max. Boundaries are fixed at creation
/// so two histograms of the same name always merge exactly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  /// boundaries [start, start*factor, ...], `count` of them, for latency
  /// metrics spanning several orders of magnitude.
  [[nodiscard]] static std::vector<double> exponential_boundaries(
      double start, double factor, int count);

  /// Default boundaries for microsecond latencies: 1us .. ~8.4s, x2 steps.
  [[nodiscard]] static const std::vector<double>& default_latency_boundaries_us();

  void observe(double value);

  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }
  /// Per-bucket counts; size() == boundaries().size() + 1 (overflow last).
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;
  [[nodiscard]] std::int64_t count() const;
  [[nodiscard]] double sum() const;
  /// Extrema; only meaningful when count() > 0.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Adds another histogram's samples; boundaries must match exactly.
  void merge(const Histogram& other);

 private:
  std::vector<double> boundaries_;  // strictly increasing
  mutable std::mutex mutex_;
  std::vector<std::int64_t> counts_;  // boundaries_.size() + 1
  std::int64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Snapshot of a whole registry, ordered by name (deterministic export).
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> boundaries;
    std::vector<std::int64_t> bucket_counts;
    std::int64_t count{0};
    double sum{0.0};
    double min{0.0};
    double max{0.0};
  };

  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  /// Per-metric descriptions (only metrics registered with a help text).
  std::map<std::string, std::string> help;
};

/// Thread-safe name -> instrument store. Instrument references returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime, so
/// hot paths can look up once and record many times.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `help` is an optional one-line description for exporters (Prometheus
  /// "# HELP"); the first non-empty help registered for a name wins.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  /// First call for a name fixes the boundaries; later calls (and merges)
  /// must agree. Defaults to the microsecond latency buckets.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>* boundaries = nullptr,
                       std::string_view help = {});

  /// Folds `other` into this registry (sums counters and histograms; keeps
  /// already-set gauges). Associative and commutative on counters and
  /// histograms -- the parallel-reduction identity.
  void merge(const MetricsRegistry& other);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  void record_help(std::string_view name, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// Bucket-interpolated quantile estimate over an exported histogram
/// (Prometheus histogram_quantile semantics, sharpened by the tracked
/// extrema): the quantile rank is located in the cumulative bucket counts
/// and interpolated linearly within its bucket. The first bucket's lower
/// edge is the observed min, the overflow bucket's upper edge the observed
/// max, and the result is clamped to [min, max]. q <= 0 returns min,
/// q >= 1 returns max; an empty histogram returns NaN.
[[nodiscard]] double estimate_quantile(
    const MetricsSnapshot::HistogramData& data, double q);

/// Registers the headline work counters (with their descriptions) so every
/// telemetry report carries the same schema keys regardless of which code
/// paths ran -- a zero then means "not exercised", never "metric removed".
/// The CLI and the bench telemetry mains all call this; bench-diff relies
/// on the stable key set.
void preregister_headline_counters(MetricsRegistry& registry);

/// Registry installed for the current thread, or nullptr (telemetry off).
[[nodiscard]] MetricsRegistry* current_registry() noexcept;

/// RAII install/restore of the current thread's registry. Nests; each scope
/// restores whatever was installed before it. Passing nullptr disables
/// telemetry within the scope.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry* registry) noexcept;
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Adds to a counter of the installed registry; no-op when telemetry is
/// off. For tight loops prefer caching the Counter& once per call.
inline void count(std::string_view name, std::int64_t n = 1) {
  if (MetricsRegistry* registry = current_registry()) {
    registry->counter(name).add(n);
  }
}

/// Records into a histogram of the installed registry; no-op when off.
inline void observe(std::string_view name, double value) {
  if (MetricsRegistry* registry = current_registry()) {
    registry->histogram(name).observe(value);
  }
}

/// Sets a gauge of the installed registry; no-op when off.
inline void set_gauge(std::string_view name, double value) {
  if (MetricsRegistry* registry = current_registry()) {
    registry->gauge(name).set(value);
  }
}

}  // namespace mcs::obs
