#include "obs/econ_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mcs::obs {

double overpayment_ratio(Money total_payment, Money total_cost) {
  if (total_cost.is_zero()) return 0.0;
  const Money overpayment = total_payment - total_cost;
  return overpayment.ratio_to(total_cost);
}

double jain_fairness(const std::vector<Money>& payments) {
  // Work in double micro-units: payments are bounded by task values, and
  // fairness is a reporting ratio, not ledger arithmetic.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const Money& payment : payments) {
    const double micros = static_cast<double>(payment.micros());
    sum += micros;
    sum_sq += micros * micros;
  }
  if (payments.empty() || sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(payments.size());
  return (sum * sum) / (n * sum_sq);
}

double coverage_rate(std::int64_t allocated, std::int64_t total) {
  if (total <= 0) return 1.0;
  return static_cast<double>(allocated) / static_cast<double>(total);
}

std::uint64_t ratio_to_sketch_units(double ratio) {
  if (!std::isfinite(ratio) || ratio <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(ratio * 1e6));
}

double sketch_units_to_ratio(double units) { return units / 1e6; }

EconWindowAggregator::EconWindowAggregator(std::uint64_t start_ns,
                                           std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  previous_.at_ns = start_ns;
}

const EconWindowStats& EconWindowAggregator::roll(const EconCumulative& now) {
  MCS_EXPECTS(now.at_ns >= previous_.at_ns,
              "econ window sampled with a clock that went backwards");
  EconWindowStats window;
  window.index = next_index_++;
  window.begin_ns = previous_.at_ns;
  window.end_ns = now.at_ns;
  window.rounds = now.rounds - previous_.rounds;
  window.rounds_skipped = now.rounds_skipped - previous_.rounds_skipped;
  window.tasks = now.tasks - previous_.tasks;
  window.tasks_allocated = now.tasks_allocated - previous_.tasks_allocated;
  window.winners = now.winners - previous_.winners;
  window.payment_micros = now.payment_micros - previous_.payment_micros;
  window.claimed_cost_micros =
      now.claimed_cost_micros - previous_.claimed_cost_micros;
  window.second_price_payment_micros = now.second_price_payment_micros -
                                       previous_.second_price_payment_micros;
  window.vcg_payment_micros =
      now.vcg_payment_micros - previous_.vcg_payment_micros;
  window.vcg_rounds = now.vcg_rounds - previous_.vcg_rounds;
  window.probe_rounds = now.probe_rounds - previous_.probe_rounds;
  window.probe_checks = now.probe_checks - previous_.probe_checks;
  window.violations = now.violations - previous_.violations;
  window.fairness = now.fairness.delta_since(previous_.fairness);
  window.overpayment = now.overpayment.delta_since(previous_.overpayment);
  const double seconds = window.seconds();
  if (seconds > 0.0) {
    window.rounds_per_sec = static_cast<double>(window.rounds) / seconds;
  }
  window.coverage = coverage_rate(window.tasks_allocated, window.tasks);
  window.overpayment_ratio =
      overpayment_ratio(Money::from_micros(window.payment_micros),
                        Money::from_micros(window.claimed_cost_micros));
  previous_ = now;
  windows_.push_back(std::move(window));
  while (windows_.size() > capacity_) windows_.pop_front();
  return windows_.back();
}

HealthState classify_econ_health(std::int64_t total_violations) {
  return total_violations > 0 ? HealthState::kDegradedEconomics
                              : HealthState::kHealthy;
}

}  // namespace mcs::obs
