// Per-round causal tracing primitives -- the third leg of the
// observability plane (metrics: how much, sketches: how slow, traces:
// where and why).
//
// A RoundTrace is one round's bounded span timeline through the serving
// engine: client-side ingest lag, queue wait, per-slot allocation ticks,
// settlement (payment), the econ audit, and a terminal round_close
// marker. Traces are built single-writer (the round's shard worker owns
// its timeline end to end; producer-side stamps travel with the queued
// event), so recording a span is a plain vector append -- no locks, no
// registry writes, nothing the deterministic counter plane could observe.
// Cross-thread visibility happens only through the summary counters and
// latency sketches of the owning plane (relaxed atomics, same quarantine
// discipline as the live telemetry plane).
//
// Retention is tail-based: at round_close a sampler decides whether the
// timeline is worth keeping (slow, economically violating, or damaged
// rounds) or folds it into summary sketches and drops it. TraceRing is
// the per-shard fixed-capacity store backing that policy: retained
// ("pinned") traces survive wraparound, healthy context traces are
// evicted first.
//
// SketchExemplars companion-maps the LatencySketch bucket space: each
// bucket above an exemplar threshold remembers the trace id of the worst
// round that landed in it, so a sketch quantile links directly to a
// causal timeline.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency_sketch.hpp"

namespace mcs::obs {

/// Version string of the round-trace JSONL wire format.
inline constexpr std::string_view kTraceSchema = "mcs.trace.v1";

/// Phases of one round's timeline, in canonical (chronological) order.
enum class TracePhase : std::uint8_t {
  kIngest = 0,   ///< intended (paced) send time -> actual submit
  kQueueWait,    ///< enqueue -> dequeue on the shard queue
  kSlotTick,     ///< one slot_tick's allocation step
  kPayment,      ///< round_close settlement (Algorithm 2 payments)
  kAudit,        ///< econ sentinel audit of the closed round
  kRoundClose,   ///< terminal zero-length marker; latency_ns is the field
};
inline constexpr std::size_t kTracePhaseCount = 6;

[[nodiscard]] std::string_view to_string(TracePhase phase);
/// Inverse of to_string; returns false on an unknown name.
[[nodiscard]] bool trace_phase_from_string(std::string_view name,
                                           TracePhase& out);

/// Lifecycle verdict of a trace at the time it was sealed.
enum class TraceStatus : std::uint8_t {
  kOpen = 0,    ///< still being built (never exported)
  kCompleted,   ///< round closed normally
  kCorrupted,   ///< shedding punched a hole mid-flight (kReject only)
  kOrphaned,    ///< events for a round whose open was shed (stub trace)
  kAbandoned,   ///< still open at drain
};

[[nodiscard]] std::string_view to_string(TraceStatus status);

/// Retention-reason bitmask of a sealed trace (0 = dropped after folding).
namespace retain {
inline constexpr unsigned kSlow = 1U;           ///< latency >= threshold
inline constexpr unsigned kEconViolation = 2U;  ///< sentinel tripped
inline constexpr unsigned kError = 4U;          ///< corrupted/orphaned/abandoned
}  // namespace retain

/// One span of a round timeline. Timestamps are uptime-relative
/// nanoseconds in the owning plane's timebase.
struct RoundSpan {
  TracePhase phase{TracePhase::kQueueWait};
  std::int32_t slot{-1};  ///< slot number for kSlotTick, -1 otherwise
  std::uint64_t start_ns{0};
  std::uint64_t end_ns{0};

  [[nodiscard]] std::uint64_t duration_ns() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// Deterministic trace id of a round (splitmix64 of the round id): stable
/// across runs and shard counts, so exemplars and JSONL records of the
/// same stream always agree.
[[nodiscard]] std::uint64_t trace_id_of(std::int64_t round);
/// 16-digit lowercase hex rendering of a trace id.
[[nodiscard]] std::string format_trace_id(std::uint64_t trace_id);

/// One round's bounded span timeline. Built by exactly one thread.
struct RoundTrace {
  std::uint64_t trace_id{0};
  std::int64_t round{-1};
  int shard{0};
  TraceStatus status{TraceStatus::kOpen};
  unsigned retained{0};          ///< retain:: bitmask, set when sealed
  std::int64_t violations{0};    ///< econ sentinel hits of this round
  std::uint64_t open_ns{0};      ///< round_open processing began
  std::uint64_t close_ns{0};     ///< last stamp of the timeline
  /// Round open->close latency as the live plane measures it (close
  /// processing begin minus open processing begin).
  std::uint64_t latency_ns{0};
  std::uint32_t spans_dropped{0};  ///< appends beyond the span cap
  std::vector<RoundSpan> spans;

  /// Appends one span, honouring the cap (drops and counts beyond it).
  void add_span(TracePhase phase, std::int32_t slot, std::uint64_t start_ns,
                std::uint64_t end_ns, std::size_t max_spans);
};

/// Fixed-capacity trace store with pinned-priority eviction. Retained
/// (pinned) traces survive wraparound; unpinned context traces are
/// evicted first, oldest first; only when every slot is pinned does the
/// oldest pinned trace fall out. Single-writer by design (one ring per
/// shard worker); read it only after the writer stopped.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  struct PushResult {
    bool evicted{false};         ///< an older trace was overwritten
    bool evicted_pinned{false};  ///< ... and it was a retained one
  };
  PushResult push(RoundTrace trace, bool pinned);

  struct Entry {
    RoundTrace trace;
    bool pinned{false};
    std::uint64_t seq{0};  ///< monotone insertion order
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return slots_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::uint64_t next_seq_{0};
  std::vector<Entry> slots_;
};

/// Companion exemplar table over the LatencySketch bucket space: each
/// bucket at or above `threshold_ns` remembers the worst (highest-value)
/// round that landed in it, keyed by trace id. offer() is thread-safe
/// (round_close frequency only -- one short mutex, never on the per-event
/// path) and leaves the deterministic counter plane untouched.
class SketchExemplars {
 public:
  explicit SketchExemplars(std::uint64_t threshold_ns)
      : threshold_ns_(threshold_ns) {}
  SketchExemplars(const SketchExemplars&) = delete;
  SketchExemplars& operator=(const SketchExemplars&) = delete;

  [[nodiscard]] std::uint64_t threshold_ns() const { return threshold_ns_; }

  /// Offers one round's latency; kept when it is at or above the
  /// threshold and the worst seen for its bucket so far.
  void offer(std::uint64_t value_ns, std::uint64_t trace_id,
             std::int64_t round);

  struct Exemplar {
    std::uint64_t bucket_le_ns{0};  ///< inclusive upper edge of the bucket
    std::uint64_t value_ns{0};      ///< worst value observed in the bucket
    std::uint64_t trace_id{0};
    std::int64_t round{-1};
  };
  /// Occupied buckets in ascending bucket order.
  [[nodiscard]] std::vector<Exemplar> snapshot() const;

 private:
  struct Slot {
    std::uint64_t value_ns{0};
    std::uint64_t trace_id{0};
    std::int64_t round{-1};
  };
  std::uint64_t threshold_ns_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;  ///< lazily sized to the sketch bucket space
};

}  // namespace mcs::obs
