#include "obs/rolling_window.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mcs::obs {

RollingWindowAggregator::RollingWindowAggregator(std::uint64_t start_ns,
                                                 std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  previous_.at_ns = start_ns;
}

const WindowStats& RollingWindowAggregator::roll(const LiveCumulative& now) {
  MCS_EXPECTS(now.at_ns >= previous_.at_ns,
              "rolling window sampled with a clock that went backwards");
  WindowStats window;
  window.index = next_index_++;
  window.begin_ns = previous_.at_ns;
  window.end_ns = now.at_ns;
  window.submitted = now.submitted - previous_.submitted;
  window.processed = now.processed - previous_.processed;
  window.rejected = now.rejected - previous_.rejected;
  window.rounds_closed = now.rounds_closed - previous_.rounds_closed;
  window.queue_depth = now.queue_depth;
  window.queue_watermark = now.window_watermark;
  window.queue_wait = now.queue_wait.delta_since(previous_.queue_wait);
  window.round_latency =
      now.round_latency.delta_since(previous_.round_latency);
  const double seconds = window.seconds();
  if (seconds > 0.0) {
    window.events_per_sec = static_cast<double>(window.processed) / seconds;
    window.rounds_per_sec =
        static_cast<double>(window.rounds_closed) / seconds;
  }
  const std::int64_t offered = window.submitted + window.rejected;
  if (offered > 0) {
    window.reject_rate =
        static_cast<double>(window.rejected) / static_cast<double>(offered);
  }
  previous_ = now;
  windows_.push_back(std::move(window));
  while (windows_.size() > capacity_) windows_.pop_front();
  return windows_.back();
}

// ----------------------------------------------------------------- health

std::string_view to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSaturated:
      return "saturated";
    case HealthState::kShedding:
      return "shedding";
    case HealthState::kStalled:
      return "stalled";
    case HealthState::kDegradedEconomics:
      return "degraded-economics";
  }
  return "unknown";
}

HealthState worse(HealthState a, HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

HealthState classify_health(const std::deque<WindowStats>& windows,
                            std::int64_t queue_capacity,
                            const HealthConfig& config) {
  if (windows.empty()) return HealthState::kHealthy;
  const std::size_t dwell =
      static_cast<std::size_t>(std::max(config.dwell_windows, 1));

  if (windows.size() >= dwell) {
    bool stalled = true;
    for (std::size_t i = windows.size() - dwell; i < windows.size(); ++i) {
      const WindowStats& w = windows[i];
      if (w.queue_depth <= 0 || w.processed > 0) {
        stalled = false;
        break;
      }
    }
    if (stalled) return HealthState::kStalled;
  }

  if (windows.back().reject_rate > config.shed_reject_rate) {
    return HealthState::kShedding;
  }

  if (windows.size() >= dwell && queue_capacity > 0) {
    const double threshold = config.saturated_queue_fraction *
                             static_cast<double>(queue_capacity);
    bool saturated = true;
    for (std::size_t i = windows.size() - dwell; i < windows.size(); ++i) {
      if (static_cast<double>(windows[i].queue_watermark) < threshold) {
        saturated = false;
        break;
      }
    }
    if (saturated) return HealthState::kSaturated;
  }

  return HealthState::kHealthy;
}

}  // namespace mcs::obs
