#include "obs/round_trace.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mcs::obs {

namespace {

// Same finalizer family the engine uses for shard_of_round, so a trace id
// is a pure function of the round id: replaying the same stream yields
// the same ids regardless of shard count or wall-clock.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view to_string(TracePhase phase) {
  switch (phase) {
    case TracePhase::kIngest:
      return "ingest";
    case TracePhase::kQueueWait:
      return "queue_wait";
    case TracePhase::kSlotTick:
      return "slot_tick";
    case TracePhase::kPayment:
      return "payment";
    case TracePhase::kAudit:
      return "audit";
    case TracePhase::kRoundClose:
      return "round_close";
  }
  return "unknown";
}

bool trace_phase_from_string(std::string_view name, TracePhase& out) {
  for (std::size_t i = 0; i < kTracePhaseCount; ++i) {
    const auto phase = static_cast<TracePhase>(i);
    if (to_string(phase) == name) {
      out = phase;
      return true;
    }
  }
  return false;
}

std::string_view to_string(TraceStatus status) {
  switch (status) {
    case TraceStatus::kOpen:
      return "open";
    case TraceStatus::kCompleted:
      return "completed";
    case TraceStatus::kCorrupted:
      return "corrupted";
    case TraceStatus::kOrphaned:
      return "orphaned";
    case TraceStatus::kAbandoned:
      return "abandoned";
  }
  return "unknown";
}

std::uint64_t trace_id_of(std::int64_t round) {
  return splitmix64(static_cast<std::uint64_t>(round));
}

std::string format_trace_id(std::uint64_t trace_id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[trace_id & 0xF];
    trace_id >>= 4;
  }
  return out;
}

void RoundTrace::add_span(TracePhase phase, std::int32_t slot,
                          std::uint64_t start_ns, std::uint64_t end_ns,
                          std::size_t max_spans) {
  if (spans.size() >= max_spans) {
    ++spans_dropped;
    return;
  }
  spans.push_back(RoundSpan{phase, slot, start_ns, end_ns});
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  slots_.reserve(capacity_);
}

TraceRing::PushResult TraceRing::push(RoundTrace trace, bool pinned) {
  PushResult result;
  if (slots_.size() < capacity_) {
    slots_.push_back(Entry{std::move(trace), pinned, next_seq_++});
    return result;
  }
  // Victim selection: oldest unpinned slot; only when every slot is
  // pinned does the oldest pinned trace fall out.
  std::size_t victim = slots_.size();
  std::uint64_t victim_seq = ~0ULL;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].pinned && slots_[i].seq < victim_seq) {
      victim = i;
      victim_seq = slots_[i].seq;
    }
  }
  if (victim == slots_.size()) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].seq < victim_seq) {
        victim = i;
        victim_seq = slots_[i].seq;
      }
    }
    result.evicted_pinned = true;
  }
  MCS_EXPECTS(victim < slots_.size(), "trace ring victim selection failed");
  result.evicted = true;
  slots_[victim] = Entry{std::move(trace), pinned, next_seq_++};
  return result;
}

void SketchExemplars::offer(std::uint64_t value_ns, std::uint64_t trace_id,
                            std::int64_t round) {
  if (value_ns < threshold_ns_) {
    return;
  }
  const std::size_t bucket = sketch_detail::bucket_of(value_ns);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slots_.empty()) {
    slots_.resize(sketch_detail::kBucketCount);
  }
  Slot& slot = slots_[bucket];
  if (slot.round < 0 || value_ns > slot.value_ns) {
    slot = Slot{value_ns, trace_id, round};
  }
}

std::vector<SketchExemplars::Exemplar> SketchExemplars::snapshot() const {
  std::vector<Exemplar> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t bucket = 0; bucket < slots_.size(); ++bucket) {
    const Slot& slot = slots_[bucket];
    if (slot.round < 0) {
      continue;
    }
    out.push_back(Exemplar{sketch_detail::bucket_upper_edge(bucket),
                           slot.value_ns, slot.trace_id, slot.round});
  }
  return out;
}

}  // namespace mcs::obs
