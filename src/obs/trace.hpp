// Phase tracing: nested RAII spans over a run's pipeline stages.
//
// A TraceCollector owns the span tree of one thread (bid intake ->
// matching -> critical-value payment search -> settlement); TraceSpan opens
// a span on the collector installed for the current thread, and also
// records the span's duration into a "span.<name>_us" histogram of the
// installed MetricsRegistry, so aggregate phase timings survive even when
// no trace is kept. Like the registry, everything is a no-op until a
// collector/registry is installed -- disabled spans cost one thread-local
// load and a branch.
//
// Spans are recorded in open order (depth-first preorder), so rendering the
// tree is a single pass over spans() using each record's depth.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::obs {

struct SpanRecord {
  std::string name;
  int depth{0};                 ///< 0 = root span
  int parent{-1};               ///< index into TraceCollector::spans(); -1 = root
  std::int64_t start_us{0};     ///< offset from the collector's epoch
  std::int64_t duration_us{0};  ///< filled when the span closes
};

/// Collects the spans of one thread. Not thread-safe by design: install one
/// collector per thread (ScopedTrace) and merge/inspect after joining.
class TraceCollector {
 public:
  TraceCollector();

  /// All spans opened so far, in open (preorder) order. Records of spans
  /// still open have duration_us == 0.
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

  /// Steady-clock epoch all start offsets are relative to.
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

  /// Internal API used by TraceSpan.
  [[nodiscard]] std::size_t open_span(std::string_view name);
  void close_span(std::size_t index, std::int64_t duration_us);

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> open_stack_;
};

/// Collector installed for the current thread, or nullptr (tracing off).
[[nodiscard]] TraceCollector* current_trace() noexcept;

/// RAII install/restore of the current thread's collector (nests).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceCollector* collector) noexcept;
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceCollector* previous_;
};

/// One nested phase. Opens on construction, closes on destruction; records
/// to the installed collector (span tree) and registry (duration
/// histogram "span.<name>_us"). No-op when neither is installed.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;
  std::size_t index_{0};
  bool metrics_on_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Records the scope's wall time into a histogram of the installed
/// registry (microseconds). Lighter than TraceSpan: never touches the
/// span tree, so it suits per-repetition / per-item loops.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view histogram_name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool enabled_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mcs::obs
