// Bertsekas' auction algorithm -- a third, independent max-weight matching
// solver.
//
// The library's correctness story for the offline mechanism rests on
// solver cross-validation: Hungarian (primal-dual), min-cost flow
// (successive shortest paths), and a brute-force oracle. The auction
// algorithm adds a fourth, structurally different method: rows (tasks)
// *bid* for columns (phones), prices rise by at least epsilon per bid, and
// with epsilon-scaling the final assignment is exactly optimal for integer
// weights. Its economic interpretation -- tasks outbidding each other for
// phones until prices clear -- also mirrors the paper's market framing,
// which makes it a nice pedagogical implementation.
//
// Same conventions as MaxWeightMatcher: rows may stay unmatched (each has
// a private zero-weight fallback), negative-weight edges are never taken.
#pragma once

#include "matching/bipartite_graph.hpp"

namespace mcs::matching {

/// Exact maximum-weight matching via forward auction with epsilon scaling.
/// Weights are Money (integer micros); optimality is exact, not
/// approximate. Intended for validation and moderate sizes -- the
/// Hungarian solver remains the production path.
[[nodiscard]] Matching auction_max_weight_matching(const WeightMatrix& graph);

}  // namespace mcs::matching
