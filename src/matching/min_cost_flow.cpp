#include "matching/min_cost_flow.hpp"

#include <deque>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace mcs::matching {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 2;

}  // namespace

MinCostFlow::MinCostFlow(int node_count) {
  MCS_EXPECTS(node_count >= 0, "node_count must be >= 0");
  head_.resize(static_cast<std::size_t>(node_count));
}

int MinCostFlow::add_edge(int from, int to, std::int64_t capacity,
                          std::int64_t cost) {
  MCS_EXPECTS(from >= 0 && from < node_count(), "edge source out of range");
  MCS_EXPECTS(to >= 0 && to < node_count(), "edge target out of range");
  MCS_EXPECTS(capacity >= 0, "edge capacity must be >= 0");
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{to, capacity, cost});
  arcs_.push_back(Arc{from, 0, -cost});
  head_[static_cast<std::size_t>(from)].push_back(id);
  head_[static_cast<std::size_t>(to)].push_back(id + 1);
  return id / 2;
}

MinCostFlow::Result MinCostFlow::solve(int source, int sink,
                                       std::int64_t flow_limit) {
  MCS_EXPECTS(source >= 0 && source < node_count(), "source out of range");
  MCS_EXPECTS(sink >= 0 && sink < node_count(), "sink out of range");
  MCS_EXPECTS(source != sink, "source must differ from sink");

  Result result;
  const auto n = static_cast<std::size_t>(node_count());

  obs::count("matching.flow.solves");
  std::int64_t augmenting_paths = 0;
  std::int64_t spfa_pops = 0;

  while (result.flow < flow_limit) {
    // SPFA shortest path on residual costs (handles negative arc costs).
    std::vector<std::int64_t> dist(n, kInf);
    std::vector<int> parent_arc(n, -1);
    std::vector<char> in_queue(n, 0);
    std::deque<int> queue;
    dist[static_cast<std::size_t>(source)] = 0;
    queue.push_back(source);
    in_queue[static_cast<std::size_t>(source)] = 1;

    while (!queue.empty()) {
      const int node = queue.front();
      queue.pop_front();
      ++spfa_pops;
      in_queue[static_cast<std::size_t>(node)] = 0;
      for (const int arc_id : head_[static_cast<std::size_t>(node)]) {
        const Arc& arc = arcs_[static_cast<std::size_t>(arc_id)];
        if (arc.capacity <= 0) continue;
        const std::int64_t candidate =
            dist[static_cast<std::size_t>(node)] + arc.cost;
        if (candidate < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = candidate;
          parent_arc[static_cast<std::size_t>(arc.to)] = arc_id;
          if (!in_queue[static_cast<std::size_t>(arc.to)]) {
            in_queue[static_cast<std::size_t>(arc.to)] = 1;
            // SLF heuristic: push likely-short labels to the front.
            if (!queue.empty() &&
                dist[static_cast<std::size_t>(arc.to)] <
                    dist[static_cast<std::size_t>(queue.front())]) {
              queue.push_front(arc.to);
            } else {
              queue.push_back(arc.to);
            }
          }
        }
      }
    }

    if (dist[static_cast<std::size_t>(sink)] >= kInf) break;  // no augmenting path

    // Bottleneck along the path.
    std::int64_t push = flow_limit - result.flow;
    for (int node = sink; node != source;) {
      const int arc_id = parent_arc[static_cast<std::size_t>(node)];
      const Arc& arc = arcs_[static_cast<std::size_t>(arc_id)];
      push = std::min(push, arc.capacity);
      node = arcs_[static_cast<std::size_t>(arc_id ^ 1)].to;
    }
    MCS_ASSERT(push > 0, "augmenting path with zero bottleneck");

    for (int node = sink; node != source;) {
      const int arc_id = parent_arc[static_cast<std::size_t>(node)];
      arcs_[static_cast<std::size_t>(arc_id)].capacity -= push;
      arcs_[static_cast<std::size_t>(arc_id ^ 1)].capacity += push;
      node = arcs_[static_cast<std::size_t>(arc_id ^ 1)].to;
    }

    result.flow += push;
    result.cost += push * dist[static_cast<std::size_t>(sink)];
    ++augmenting_paths;
  }
  if (obs::MetricsRegistry* registry = obs::current_registry()) {
    registry->counter("matching.flow.augmenting_paths").add(augmenting_paths);
    registry->counter("matching.flow.spfa_pops").add(spfa_pops);
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(int edge_id) const {
  const auto forward = static_cast<std::size_t>(edge_id) * 2;
  MCS_EXPECTS(forward + 1 < arcs_.size(), "edge id out of range");
  // Flow pushed equals the residual capacity accumulated on the twin arc.
  return arcs_[forward + 1].capacity;
}

Matching max_weight_matching_via_flow(const WeightMatrix& graph) {
  const int nr = graph.rows();
  const int nc = graph.cols();
  // Nodes: 0 = source, 1..nr rows, nr+1..nr+nc columns, last = sink.
  const int source = 0;
  const int sink = nr + nc + 1;
  MinCostFlow flow(nr + nc + 2);

  std::vector<std::vector<int>> edge_id(
      static_cast<std::size_t>(nr), std::vector<int>(static_cast<std::size_t>(nc), -1));
  for (int r = 0; r < nr; ++r) {
    flow.add_edge(source, 1 + r, 1, 0);
    // Bypass: a row may stay unmatched at zero cost, so negative-weight
    // edges are never forced.
    flow.add_edge(1 + r, sink, 1, 0);
    for (int c = 0; c < nc; ++c) {
      if (const auto w = graph.get(r, c)) {
        edge_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            flow.add_edge(1 + r, 1 + nr + c, 1, -w->micros());
      }
    }
  }
  for (int c = 0; c < nc; ++c) flow.add_edge(1 + nr + c, sink, 1, 0);

  const MinCostFlow::Result result = flow.solve(source, sink);
  MCS_ASSERT(result.flow == nr, "bypass edges guarantee full row flow");

  Matching matching;
  matching.row_to_col.assign(static_cast<std::size_t>(nr), std::nullopt);
  matching.total_weight = Money::from_micros(-result.cost);
  for (int r = 0; r < nr; ++r) {
    for (int c = 0; c < nc; ++c) {
      const int id = edge_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      if (id >= 0 && flow.flow_on(id) > 0) {
        matching.row_to_col[static_cast<std::size_t>(r)] = c;
      }
    }
  }
  return matching;
}

}  // namespace mcs::matching
