// Structural validation of matchings.
//
// Solvers assert their own invariants, but the auction layer also re-checks
// any matching it consumes (defense in depth: a subtle solver bug would
// otherwise silently corrupt welfare and payments). validate_matching throws
// on the first inconsistency; recompute_weight re-derives the total from the
// graph so callers never trust a cached sum.
#pragma once

#include "common/money.hpp"
#include "matching/bipartite_graph.hpp"

namespace mcs::matching {

/// Throws ContractViolation when the matching is structurally invalid for
/// the graph: wrong row count, column out of range, column matched twice,
/// or a matched pair with no edge.
void validate_matching(const WeightMatrix& graph, const Matching& matching);

/// True iff validate_matching would pass.
[[nodiscard]] bool is_valid_matching(const WeightMatrix& graph,
                                     const Matching& matching);

/// Sum of matched edge weights, recomputed from the graph (requires a valid
/// matching).
[[nodiscard]] Money recompute_weight(const WeightMatrix& graph,
                                     const Matching& matching);

}  // namespace mcs::matching
