#include "matching/validation.hpp"

#include <vector>

#include "common/assert.hpp"

namespace mcs::matching {

void validate_matching(const WeightMatrix& graph, const Matching& matching) {
  MCS_ASSERT(matching.row_to_col.size() ==
                 static_cast<std::size_t>(graph.rows()),
             "matching row count differs from graph row count");
  std::vector<char> column_used(static_cast<std::size_t>(graph.cols()), 0);
  for (std::size_t r = 0; r < matching.row_to_col.size(); ++r) {
    const auto& col = matching.row_to_col[r];
    if (!col) continue;
    MCS_ASSERT(*col >= 0 && *col < graph.cols(),
               "matched column index out of range");
    MCS_ASSERT(!column_used[static_cast<std::size_t>(*col)],
               "column matched to more than one row");
    column_used[static_cast<std::size_t>(*col)] = 1;
    MCS_ASSERT(graph.has_edge(static_cast<int>(r), *col),
               "matched pair has no edge in the graph");
  }
}

bool is_valid_matching(const WeightMatrix& graph, const Matching& matching) {
  try {
    validate_matching(graph, matching);
    return true;
  } catch (const ContractViolation&) {
    return false;
  }
}

Money recompute_weight(const WeightMatrix& graph, const Matching& matching) {
  validate_matching(graph, matching);
  Money total;
  for (std::size_t r = 0; r < matching.row_to_col.size(); ++r) {
    if (const auto& col = matching.row_to_col[r]) {
      total += graph.weight(static_cast<int>(r), *col);
    }
  }
  return total;
}

}  // namespace mcs::matching
