// Exhaustive maximum-weight matching -- the test oracle.
//
// Exact dynamic program over subsets of columns. Exponential in the column
// count, so usable only on small instances; the property tests compare the
// Hungarian and min-cost-flow solvers against it on thousands of randomized
// small graphs.
#pragma once

#include "matching/bipartite_graph.hpp"

namespace mcs::matching {

/// Maximum number of columns the oracle accepts (2^cols DP states).
inline constexpr int kBruteForceMaxCols = 20;

/// Optimal max-weight matching by subset DP; rows may stay unmatched and
/// negative-weight edges are never taken (same conventions as
/// MaxWeightMatcher). Requires cols <= kBruteForceMaxCols.
[[nodiscard]] Matching brute_force_max_weight(const WeightMatrix& graph);

}  // namespace mcs::matching
