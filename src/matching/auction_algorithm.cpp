#include "matching/auction_algorithm.hpp"

#include <deque>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace mcs::matching {

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

}  // namespace

Matching auction_max_weight_matching(const WeightMatrix& graph) {
  const int nr = graph.rows();
  const int nc = graph.cols();

  Matching matching;
  matching.row_to_col.assign(static_cast<std::size_t>(nr), std::nullopt);
  if (nr == 0) return matching;

  // The auction algorithm with epsilon scaling is sound for the *symmetric*
  // assignment problem (every object ends up owned, so persistent prices
  // form a valid dual). We symmetrize:
  //   objects: nc real columns + nr private "stay unmatched" dummies;
  //   persons: the nr real rows + nc zero-value fillers that can take any
  //            object, soaking up whatever the real rows leave behind.
  const int objects = nc + nr;
  const int persons = objects;  // nr real + nc fillers
  const std::int64_t scale = persons + 1;

  std::vector<std::vector<int>> candidates(static_cast<std::size_t>(persons));
  std::vector<std::vector<std::int64_t>> values(
      static_cast<std::size_t>(persons));
  std::int64_t max_abs_value = 1;
  for (int r = 0; r < nr; ++r) {
    for (int c = 0; c < nc; ++c) {
      if (const auto w = graph.get(r, c)) {
        MCS_EXPECTS(
            (w->micros() < 0 ? -w->micros() : w->micros()) <
                std::numeric_limits<std::int64_t>::max() / (8 * scale),
            "weights too large for the auction solver's integer scaling");
        candidates[static_cast<std::size_t>(r)].push_back(c);
        const std::int64_t v = w->micros() * scale;
        values[static_cast<std::size_t>(r)].push_back(v);
        max_abs_value = std::max(max_abs_value, v < 0 ? -v : v);
      }
    }
    candidates[static_cast<std::size_t>(r)].push_back(nc + r);
    values[static_cast<std::size_t>(r)].push_back(0);
  }
  for (int f = 0; f < nc; ++f) {
    const auto person = static_cast<std::size_t>(nr + f);
    candidates[person].reserve(static_cast<std::size_t>(objects));
    for (int j = 0; j < objects; ++j) {
      candidates[person].push_back(j);
      values[person].push_back(0);
    }
  }

  std::vector<std::int64_t> price(static_cast<std::size_t>(objects), 0);
  std::vector<int> owner(static_cast<std::size_t>(objects), -1);
  std::vector<int> assigned_to(static_cast<std::size_t>(persons), -1);

  // Epsilon scaling: start coarse, divide by 4 each phase, end at 1. At
  // the final phase, integer values scaled by (persons + 1) make the
  // epsilon-optimal assignment exactly optimal.
  std::int64_t eps = std::max<std::int64_t>(1, max_abs_value / 4);
  // Generous guard: termination is guaranteed, but a bug must surface as
  // an error, not a hang.
  std::int64_t remaining_bids = 512LL * (persons + 4) * (objects + 4) * 64;

  for (;;) {
    std::fill(owner.begin(), owner.end(), -1);
    std::fill(assigned_to.begin(), assigned_to.end(), -1);
    std::deque<int> unassigned;
    for (int p = 0; p < persons; ++p) unassigned.push_back(p);

    while (!unassigned.empty()) {
      if (--remaining_bids < 0) {
        throw SolverError("auction algorithm failed to terminate");
      }
      const int person = unassigned.front();
      unassigned.pop_front();

      std::int64_t best = kNegInf;
      std::int64_t second = kNegInf;
      int best_object = -1;
      const auto& objs = candidates[static_cast<std::size_t>(person)];
      const auto& vals = values[static_cast<std::size_t>(person)];
      for (std::size_t k = 0; k < objs.size(); ++k) {
        const std::int64_t net =
            vals[k] - price[static_cast<std::size_t>(objs[k])];
        if (net > best) {
          second = best;
          best = net;
          best_object = objs[k];
        } else if (net > second) {
          second = net;
        }
      }
      MCS_ASSERT(best_object >= 0, "every person has a candidate");

      const std::int64_t increment =
          (second == kNegInf ? eps : best - second + eps);
      price[static_cast<std::size_t>(best_object)] += increment;

      const int displaced = owner[static_cast<std::size_t>(best_object)];
      if (displaced >= 0) {
        assigned_to[static_cast<std::size_t>(displaced)] = -1;
        unassigned.push_back(displaced);
      }
      owner[static_cast<std::size_t>(best_object)] = person;
      assigned_to[static_cast<std::size_t>(person)] = best_object;
    }

    if (eps == 1) break;
    eps = std::max<std::int64_t>(1, eps / 4);
  }

  for (int r = 0; r < nr; ++r) {
    const int object = assigned_to[static_cast<std::size_t>(r)];
    MCS_ASSERT(object >= 0, "real row left unassigned by the auction");
    if (object < nc) {
      // A negative-weight edge is never optimal (the private dummy offers
      // 0), so matched real edges are the matching we report.
      matching.row_to_col[static_cast<std::size_t>(r)] = object;
      matching.total_weight += graph.weight(r, object);
    }
  }
  return matching;
}

}  // namespace mcs::matching
