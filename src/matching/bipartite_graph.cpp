#include "matching/bipartite_graph.hpp"

#include <algorithm>

namespace mcs::matching {

WeightMatrix::WeightMatrix(int rows, int cols) : rows_(rows), cols_(cols) {
  MCS_EXPECTS(rows >= 0 && cols >= 0, "WeightMatrix dimensions must be >= 0");
  micros_.assign(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), kAbsent);
}

void WeightMatrix::set(int row, int col, Money weight) {
  MCS_EXPECTS(weight.micros() != kAbsent, "weight collides with absent sentinel");
  micros_[index(row, col)] = weight.micros();
}

void WeightMatrix::clear(int row, int col) { micros_[index(row, col)] = kAbsent; }

bool WeightMatrix::has_edge(int row, int col) const {
  return micros_[index(row, col)] != kAbsent;
}

Money WeightMatrix::weight(int row, int col) const {
  const std::int64_t m = micros_[index(row, col)];
  MCS_EXPECTS(m != kAbsent, "weight() of an absent edge");
  return Money::from_micros(m);
}

std::optional<Money> WeightMatrix::get(int row, int col) const {
  const std::int64_t m = micros_[index(row, col)];
  if (m == kAbsent) return std::nullopt;
  return Money::from_micros(m);
}

std::size_t WeightMatrix::edge_count() const {
  return static_cast<std::size_t>(
      std::count_if(micros_.begin(), micros_.end(),
                    [](std::int64_t m) { return m != kAbsent; }));
}

WeightMatrix WeightMatrix::without_column(int col) const {
  WeightMatrix copy = *this;
  for (int r = 0; r < rows_; ++r) copy.clear(r, col);
  return copy;
}

std::size_t Matching::size() const {
  return static_cast<std::size_t>(
      std::count_if(row_to_col.begin(), row_to_col.end(),
                    [](const std::optional<int>& c) { return c.has_value(); }));
}

std::vector<std::optional<int>> Matching::col_to_row(int cols) const {
  std::vector<std::optional<int>> inverse(static_cast<std::size_t>(cols));
  for (std::size_t r = 0; r < row_to_col.size(); ++r) {
    if (row_to_col[r]) {
      const int c = *row_to_col[r];
      MCS_ASSERT(c >= 0 && c < cols, "matched column out of range");
      MCS_ASSERT(!inverse[static_cast<std::size_t>(c)],
                 "column matched to two rows");
      inverse[static_cast<std::size_t>(c)] = static_cast<int>(r);
    }
  }
  return inverse;
}

}  // namespace mcs::matching
