#include "matching/hungarian.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mcs::matching {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 2;

}  // namespace

MinCostAssigner::MinCostAssigner(int rows, int cols,
                                 std::vector<std::int64_t> cost)
    : rows_(rows), cols_(cols), cost_(std::move(cost)) {
  MCS_EXPECTS(rows >= 0 && cols >= rows, "MinCostAssigner requires 0 <= rows <= cols");
  MCS_EXPECTS(cost_.size() == static_cast<std::size_t>(rows) *
                                  static_cast<std::size_t>(cols),
              "cost matrix size mismatch");
}

std::int64_t MinCostAssigner::cost1(int i, int j) const {
  // 1-based accessor used by the classical algorithm formulation.
  return cost_[static_cast<std::size_t>(i - 1) *
                   static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(j - 1)];
}

void MinCostAssigner::augment_row(DualState& s, int row1,
                                  int excluded_col1) const {
  // One shortest-augmenting-path iteration (Dijkstra on reduced costs) that
  // matches `row1`, maintaining dual feasibility. `excluded_col1` (or 0)
  // marks a deleted column that must not be entered.
  std::vector<std::int64_t> minv(static_cast<std::size_t>(cols_) + 1, kInf);
  std::vector<char> used(static_cast<std::size_t>(cols_) + 1, 0);
  std::vector<int> way(static_cast<std::size_t>(cols_) + 1, 0);

  s.p[0] = row1;
  int j0 = 0;
  std::int64_t iterations = 0;
  do {
    ++iterations;
    used[static_cast<std::size_t>(j0)] = 1;
    const int i0 = s.p[static_cast<std::size_t>(j0)];
    std::int64_t delta = kInf;
    int j1 = -1;
    for (int j = 1; j <= cols_; ++j) {
      if (used[static_cast<std::size_t>(j)] || j == excluded_col1) continue;
      const std::int64_t cur =
          cost1(i0, j) - s.u[static_cast<std::size_t>(i0)] -
          s.v[static_cast<std::size_t>(j)];
      if (cur < minv[static_cast<std::size_t>(j)]) {
        minv[static_cast<std::size_t>(j)] = cur;
        way[static_cast<std::size_t>(j)] = j0;
      }
      if (minv[static_cast<std::size_t>(j)] < delta) {
        delta = minv[static_cast<std::size_t>(j)];
        j1 = j;
      }
    }
    if (j1 < 0 || delta >= kForbidden / 2) {
      throw SolverError(
          "assignment infeasible: a row cannot reach any free column "
          "through admissible edges");
    }
    for (int j = 0; j <= cols_; ++j) {
      if (used[static_cast<std::size_t>(j)]) {
        s.u[static_cast<std::size_t>(s.p[static_cast<std::size_t>(j)])] += delta;
        s.v[static_cast<std::size_t>(j)] -= delta;
      } else if (minv[static_cast<std::size_t>(j)] < kInf) {
        minv[static_cast<std::size_t>(j)] -= delta;
      }
    }
    j0 = j1;
  } while (s.p[static_cast<std::size_t>(j0)] != 0);

  if (obs::MetricsRegistry* registry = obs::current_registry()) {
    registry->counter("matching.hungarian.iterations").add(iterations);
    registry->counter("matching.hungarian.augmenting_paths").add(1);
  }

  // Unwind the alternating path, flipping matched/unmatched edges.
  do {
    const int j1 = way[static_cast<std::size_t>(j0)];
    s.p[static_cast<std::size_t>(j0)] = s.p[static_cast<std::size_t>(j1)];
    j0 = j1;
  } while (j0 != 0);
}

std::int64_t MinCostAssigner::assignment_cost(const DualState& s,
                                              int excluded_col1) const {
  std::int64_t total = 0;
  for (int j = 1; j <= cols_; ++j) {
    if (j == excluded_col1) continue;
    const int i = s.p[static_cast<std::size_t>(j)];
    if (i != 0) total += cost1(i, j);
  }
  return total;
}

void MinCostAssigner::solve() {
  if (solved_) return;
  obs::count("matching.hungarian.solves");
  state_.u.assign(static_cast<std::size_t>(rows_) + 1, 0);
  state_.v.assign(static_cast<std::size_t>(cols_) + 1, 0);
  state_.p.assign(static_cast<std::size_t>(cols_) + 1, 0);
  for (int i = 1; i <= rows_; ++i) augment_row(state_, i, /*excluded=*/0);

  row_to_col_.assign(static_cast<std::size_t>(rows_), -1);
  for (int j = 1; j <= cols_; ++j) {
    const int i = state_.p[static_cast<std::size_t>(j)];
    if (i != 0) row_to_col_[static_cast<std::size_t>(i - 1)] = j - 1;
  }
  for (const int c : row_to_col_) {
    MCS_ENSURES(c >= 0, "every row must be assigned after solve()");
  }
  total_cost_ = assignment_cost(state_, /*excluded=*/0);
  solved_ = true;
}

const std::vector<int>& MinCostAssigner::row_to_col() const {
  MCS_EXPECTS(solved_, "row_to_col() before solve()");
  return row_to_col_;
}

std::int64_t MinCostAssigner::total_cost() const {
  MCS_EXPECTS(solved_, "total_cost() before solve()");
  return total_cost_;
}

const std::vector<std::int64_t>& MinCostAssigner::row_potentials() const {
  MCS_EXPECTS(solved_, "row_potentials() before solve()");
  return state_.u;
}

const std::vector<std::int64_t>& MinCostAssigner::col_potentials() const {
  MCS_EXPECTS(solved_, "col_potentials() before solve()");
  return state_.v;
}

std::int64_t MinCostAssigner::total_cost_excluding_column(int col) const {
  MCS_EXPECTS(solved_, "total_cost_excluding_column() before solve()");
  MCS_EXPECTS(col >= 0 && col < cols_, "column index out of range");
  const int col1 = col + 1;
  const int displaced_row = state_.p[static_cast<std::size_t>(col1)];
  if (displaced_row == 0) {
    // Column was unmatched: deleting it changes nothing.
    return total_cost_;
  }
  // The optimal duals remain feasible for the reduced instance, and
  // complementary slackness holds for every remaining matched pair, so a
  // single augmentation of the displaced row restores optimality.
  obs::count("matching.hungarian.incremental_queries");
  DualState s = state_;
  s.p[static_cast<std::size_t>(col1)] = 0;
  augment_row(s, displaced_row, col1);
  return assignment_cost(s, col1);
}

// ------------------------------------------------------- MaxWeightMatcher

namespace {

/// Builds the padded min-cost instance: columns [0, real_cols) mirror the
/// weight matrix with negated weights; column real_cols + r is row r's
/// private zero-cost "unmatched" sink.
MinCostAssigner build_padded_assigner(const WeightMatrix& graph) {
  const int nr = graph.rows();
  const int nc = graph.cols();
  const int padded_cols = nc + nr;
  std::vector<std::int64_t> cost(
      static_cast<std::size_t>(nr) * static_cast<std::size_t>(padded_cols),
      MinCostAssigner::kForbidden);
  for (int r = 0; r < nr; ++r) {
    const auto row_base = static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(padded_cols);
    for (int c = 0; c < nc; ++c) {
      if (const auto w = graph.get(r, c)) {
        cost[row_base + static_cast<std::size_t>(c)] = -w->micros();
      }
    }
    cost[row_base + static_cast<std::size_t>(nc + r)] = 0;
  }
  return MinCostAssigner(nr, padded_cols, std::move(cost));
}

}  // namespace

MaxWeightMatcher::MaxWeightMatcher(const WeightMatrix& graph)
    : real_cols_(graph.cols()), assigner_(build_padded_assigner(graph)) {}

const Matching& MaxWeightMatcher::solve() {
  if (solved_) return matching_;
  assigner_.solve();
  matching_.row_to_col.assign(static_cast<std::size_t>(assigner_.rows()),
                              std::nullopt);
  for (int r = 0; r < assigner_.rows(); ++r) {
    const int c = assigner_.row_to_col()[static_cast<std::size_t>(r)];
    if (c < real_cols_) matching_.row_to_col[static_cast<std::size_t>(r)] = c;
  }
  matching_.total_weight = Money::from_micros(-assigner_.total_cost());
  MCS_ENSURES(!matching_.total_weight.is_negative(),
              "optimal matching weight cannot be negative (empty matching is 0)");
  solved_ = true;
  return matching_;
}

Money MaxWeightMatcher::total_weight() {
  solve();
  return matching_.total_weight;
}

Money MaxWeightMatcher::total_weight_without_column(int col) {
  MCS_EXPECTS(col >= 0 && col < real_cols_, "column index out of range");
  solve();
  return Money::from_micros(-assigner_.total_cost_excluding_column(col));
}

}  // namespace mcs::matching
