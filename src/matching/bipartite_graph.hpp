// Dense weighted bipartite graphs (the representation of Section IV-B).
//
// The offline winning-bid determination problem is a maximum-weight
// bipartite matching: left vertices are sensing tasks, right vertices are
// smartphones, and the edge (task in slot j, phone i) exists with weight
// nu - b_i exactly when phone i's reported active window covers slot j
// (paper Fig. 3). This header provides the graph representation and the
// matching result type; solvers live in hungarian.hpp / min_cost_flow.hpp /
// brute_force.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/money.hpp"

namespace mcs::matching {

/// Dense rows x cols matrix of optional edge weights. Rows are the "left"
/// side (tasks), columns the "right" side (smartphones). An absent entry
/// means the pair can never be matched.
class WeightMatrix {
 public:
  WeightMatrix(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  /// Inserts or overwrites the edge (row, col).
  void set(int row, int col, Money weight);

  /// Removes the edge (row, col) if present.
  void clear(int row, int col);

  [[nodiscard]] bool has_edge(int row, int col) const;

  /// Weight of (row, col); requires the edge to exist.
  [[nodiscard]] Money weight(int row, int col) const;

  /// Weight or nullopt when absent.
  [[nodiscard]] std::optional<Money> get(int row, int col) const;

  /// Number of present edges.
  [[nodiscard]] std::size_t edge_count() const;

  /// Copy of this matrix with one column's edges all removed (the VCG
  /// "without bidder i" graph). Column indices are preserved.
  [[nodiscard]] WeightMatrix without_column(int col) const;

 private:
  [[nodiscard]] std::size_t index(int row, int col) const {
    MCS_EXPECTS(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "WeightMatrix index out of range");
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }

  // Absent edges use INT64_MIN as sentinel in the packed micros array; the
  // sentinel can never be produced by Money arithmetic (Money::max() guard).
  static constexpr std::int64_t kAbsent = INT64_MIN;

  int rows_;
  int cols_;
  std::vector<std::int64_t> micros_;
};

/// A (not necessarily perfect) matching over a WeightMatrix.
struct Matching {
  /// For each row: matched column, or nullopt when the row is unmatched.
  std::vector<std::optional<int>> row_to_col;

  /// Sum of matched edge weights.
  Money total_weight;

  /// Number of matched rows.
  [[nodiscard]] std::size_t size() const;

  /// Inverse view: for each column, the matched row (or nullopt).
  [[nodiscard]] std::vector<std::optional<int>> col_to_row(int cols) const;
};

}  // namespace mcs::matching
