#include "matching/brute_force.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace mcs::matching {

Matching brute_force_max_weight(const WeightMatrix& graph) {
  const int nr = graph.rows();
  const int nc = graph.cols();
  MCS_EXPECTS(nc <= kBruteForceMaxCols,
              "brute_force_max_weight: too many columns");
  const std::size_t mask_count = std::size_t{1} << nc;
  MCS_EXPECTS((static_cast<std::size_t>(nr) + 1) * mask_count <=
                  (std::size_t{1} << 25),
              "brute_force_max_weight: instance too large for the oracle");

  constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 2;

  // dp[k][mask]: best total weight (micros) after deciding rows [0, k) with
  // exactly the columns in `mask` used. Unreachable states hold kNegInf.
  std::vector<std::vector<std::int64_t>> dp(
      static_cast<std::size_t>(nr) + 1,
      std::vector<std::int64_t>(mask_count, kNegInf));
  dp[0][0] = 0;

  for (int k = 0; k < nr; ++k) {
    const auto row = static_cast<std::size_t>(k);
    for (std::size_t mask = 0; mask < mask_count; ++mask) {
      const std::int64_t base = dp[row][mask];
      if (base == kNegInf) continue;
      // Skip this row.
      dp[row + 1][mask] = std::max(dp[row + 1][mask], base);
      // Or match it to any free column with a nonnegative edge (negative
      // edges are dominated by skipping, matching MaxWeightMatcher).
      for (int c = 0; c < nc; ++c) {
        const std::size_t bit = std::size_t{1} << c;
        if ((mask & bit) != 0) continue;
        if (const auto w = graph.get(k, c); w && !w->is_negative()) {
          dp[row + 1][mask | bit] =
              std::max(dp[row + 1][mask | bit], base + w->micros());
        }
      }
    }
  }

  // Find the best final state, then reconstruct decisions backwards.
  std::size_t best_mask = 0;
  std::int64_t best = kNegInf;
  for (std::size_t mask = 0; mask < mask_count; ++mask) {
    if (dp[static_cast<std::size_t>(nr)][mask] > best) {
      best = dp[static_cast<std::size_t>(nr)][mask];
      best_mask = mask;
    }
  }
  MCS_ASSERT(best >= 0, "empty matching of weight 0 is always feasible");

  Matching matching;
  matching.row_to_col.assign(static_cast<std::size_t>(nr), std::nullopt);
  matching.total_weight = Money::from_micros(best);

  std::size_t mask = best_mask;
  for (int k = nr; k > 0; --k) {
    const auto row = static_cast<std::size_t>(k);
    const std::int64_t value = dp[row][mask];
    if (dp[row - 1][mask] == value) continue;  // row k-1 was skipped
    bool found = false;
    for (int c = 0; c < nc && !found; ++c) {
      const std::size_t bit = std::size_t{1} << c;
      if ((mask & bit) == 0) continue;
      if (const auto w = graph.get(k - 1, c); w && !w->is_negative()) {
        if (dp[row - 1][mask ^ bit] != kNegInf &&
            dp[row - 1][mask ^ bit] + w->micros() == value) {
          matching.row_to_col[row - 1] = c;
          mask ^= bit;
          found = true;
        }
      }
    }
    MCS_ASSERT(found, "DP reconstruction must find the chosen column");
  }
  return matching;
}

}  // namespace mcs::matching
