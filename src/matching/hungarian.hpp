// Hungarian algorithm (Kuhn-Munkres via shortest augmenting paths with
// potentials) -- the paper's optimal winning-bids determination engine.
//
// Two layers:
//
//  * MinCostAssigner: exact minimum-cost assignment of `rows` items to
//    distinct columns of a dense int64 cost matrix (rows <= cols, forbidden
//    entries allowed). O(rows^2 * cols) -- the O((n+gamma)^3) bound of
//    Theorem 3. After solving it exposes the optimal dual potentials, which
//    makes *sensitivity queries* cheap: deleting one column leaves the duals
//    feasible, so re-optimizing needs a single augmenting-path iteration
//    (O(rows * cols)) instead of a full re-solve. The offline VCG payment
//    rule needs exactly this query once per winner.
//
//  * MaxWeightMatcher: maximum-weight (not necessarily perfect) bipartite
//    matching over a WeightMatrix, built on MinCostAssigner by negating
//    weights and padding with one zero-cost "stay unmatched" dummy column
//    per row. This is the transformation of Section IV-B: a task may always
//    remain unallocated, and negative-welfare edges are never taken.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/money.hpp"
#include "matching/bipartite_graph.hpp"

namespace mcs::matching {

/// Exact min-cost assignment on a dense matrix. Indices are 0-based in the
/// public API.
class MinCostAssigner {
 public:
  /// Entries >= kForbidden/2 are treated as absent edges. A problem is
  /// feasible iff every row can be assigned through non-forbidden entries;
  /// infeasibility raises SolverError.
  static constexpr std::int64_t kForbidden =
      std::numeric_limits<std::int64_t>::max() / 8;

  /// `cost` is row-major with `rows * cols` entries; requires rows <= cols.
  MinCostAssigner(int rows, int cols, std::vector<std::int64_t> cost);

  /// Runs the solver; idempotent.
  void solve();

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  /// Optimal assignment: for each row, its column. Requires solve().
  [[nodiscard]] const std::vector<int>& row_to_col() const;

  /// Total cost of the optimal assignment. Requires solve().
  [[nodiscard]] std::int64_t total_cost() const;

  /// Optimal dual potentials (LP certificate); for all (i, j):
  /// cost(i, j) >= u[i] + v[j], with equality on matched pairs. Exposed for
  /// validation in tests. Requires solve().
  [[nodiscard]] const std::vector<std::int64_t>& row_potentials() const;
  [[nodiscard]] const std::vector<std::int64_t>& col_potentials() const;

  /// Optimal total cost of the instance with column `col` deleted, assuming
  /// the remaining instance is still feasible. Runs one augmenting-path
  /// iteration on a copy of the dual state: O(rows * cols). Requires
  /// solve(); does not modify this solver.
  [[nodiscard]] std::int64_t total_cost_excluding_column(int col) const;

 private:
  struct DualState {
    std::vector<std::int64_t> u;  // row potentials, 1-based
    std::vector<std::int64_t> v;  // col potentials, 1-based
    std::vector<int> p;           // p[j] = row matched to col j (1-based; 0 = free)
  };

  [[nodiscard]] std::int64_t cost1(int i, int j) const;  // 1-based access
  void augment_row(DualState& s, int row1, int excluded_col1) const;
  [[nodiscard]] std::int64_t assignment_cost(const DualState& s,
                                             int excluded_col1) const;

  int rows_;
  int cols_;
  std::vector<std::int64_t> cost_;  // row-major, 0-based storage
  DualState state_;
  std::vector<int> row_to_col_;
  std::int64_t total_cost_{0};
  bool solved_{false};
};

/// Maximum-weight bipartite matching with optional rows ("a task may stay
/// unallocated"). The matcher owns its solve state and supports the VCG
/// sensitivity query.
class MaxWeightMatcher {
 public:
  explicit MaxWeightMatcher(const WeightMatrix& graph);

  /// Optimal matching; matched edges always have weight >= 0 (a negative
  /// edge is dominated by leaving the row unmatched). Idempotent.
  const Matching& solve();

  /// Total weight of the optimum. Implies solve().
  Money total_weight();

  /// Optimal total weight with column `col` (a smartphone) removed from the
  /// graph -- the omega*(B_{-i}) term of the VCG payment (Eq. 7). Uses the
  /// incremental dual query; O(rows * cols) per call. Implies solve().
  Money total_weight_without_column(int col);

 private:
  int real_cols_;
  MinCostAssigner assigner_;
  Matching matching_;
  bool solved_{false};
};

}  // namespace mcs::matching
