// Minimum-cost flow (successive shortest paths), and a max-weight matching
// front-end built on it.
//
// The paper cites the Edmonds-Karp / Tomizawa lineage [17][18] for the
// O(n^3) Hungarian bound; this module implements that network-flow view
// directly. In this library it serves as an *independent* solver used to
// cross-validate the Hungarian implementation: the two algorithms share no
// code, so agreeing totals on randomized instances is strong evidence both
// are correct.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/money.hpp"
#include "matching/bipartite_graph.hpp"

namespace mcs::matching {

/// General min-cost flow on a directed graph with int64 capacities/costs.
/// Negative edge costs are allowed (the graph must not contain a
/// negative-cost directed cycle of positive capacity); shortest paths are
/// found with SPFA, so this solver favors correctness over speed and is
/// intended for validation and small/medium instances.
class MinCostFlow {
 public:
  explicit MinCostFlow(int node_count);

  /// Adds a directed edge; returns its id for flow_on(). Capacity >= 0.
  int add_edge(int from, int to, std::int64_t capacity, std::int64_t cost);

  struct Result {
    std::int64_t flow{0};
    std::int64_t cost{0};
  };

  /// Sends up to flow_limit units from source to sink along successively
  /// cheapest augmenting paths; returns achieved flow and its total cost.
  Result solve(int source, int sink,
               std::int64_t flow_limit = std::numeric_limits<std::int64_t>::max());

  /// Flow currently on edge `edge_id` (after solve()).
  [[nodiscard]] std::int64_t flow_on(int edge_id) const;

  [[nodiscard]] int node_count() const { return static_cast<int>(head_.size()); }

 private:
  struct Arc {
    int to;
    std::int64_t capacity;  // residual capacity
    std::int64_t cost;
  };

  // Arcs are stored in pairs: arc 2k is forward, 2k+1 its residual twin.
  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> head_;  // node -> arc indices
};

/// Maximum-weight bipartite matching computed through min-cost flow
/// (rows may stay unmatched; negative-weight edges are never taken).
/// Returns the same totals as MaxWeightMatcher; used as its cross-check.
[[nodiscard]] Matching max_weight_matching_via_flow(const WeightMatrix& graph);

}  // namespace mcs::matching
