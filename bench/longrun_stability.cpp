// Long-run stability (the remark under Fig. 9: "the mobile crowdsourcing
// system is stable even in the long run").
//
// Thirty chained rounds over a persistent phone community (members keep
// their private costs across rounds, redraw availability, churn with 50%
// retention). The overpayment ratio of both mechanisms must stay inside a
// narrow band round after round -- no drift, no blow-ups -- even though
// the community composition evolves.
#include <iostream>

#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/multi_round.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Long-run stability: chained auction rounds over a persistent phone "
      "community (Fig. 9 remark).");
  cli.add_int("rounds", 30, "number of chained rounds");
  cli.add_int("seed", 42, "RNG seed");
  cli.add_double("retention", 0.5, "per-round community retention probability");
  if (!cli.parse(argc, argv)) return 0;

  sim::MultiRoundConfig config;
  config.workload.num_slots = 20;  // smaller rounds, many of them
  config.rounds = static_cast<int>(cli.get_int("rounds"));
  config.retention = cli.get_double("retention");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "=== Long-run stability over " << config.rounds
            << " chained rounds (retention " << config.retention << ") ===\n\n";

  const sim::MultiRoundResult result = sim::run_multi_round(config);

  io::TextTable table({"round", "community", "tasks", "sigma(on)",
                       "sigma(off)", "welfare(on)", "welfare(off)"});
  for (const sim::RoundRecord& record : result.rounds) {
    table.row()
        .cell(static_cast<std::int64_t>(record.round))
        .cell(static_cast<std::int64_t>(record.community_size))
        .cell(static_cast<std::int64_t>(record.tasks))
        .cell(record.online.overpayment_ratio, 3)
        .cell(record.offline.overpayment_ratio, 3)
        .cell(record.online.social_welfare.to_double(), 1)
        .cell(record.offline.social_welfare.to_double(), 1);
  }
  table.print(std::cout);

  std::cout << "\nsummary: sigma(online) mean "
            << io::format_double(result.online_sigma.mean(), 3) << " in ["
            << io::format_double(result.online_sigma.min(), 3) << ", "
            << io::format_double(result.online_sigma.max(), 3)
            << "]; sigma(offline) mean "
            << io::format_double(result.offline_sigma.mean(), 3) << " in ["
            << io::format_double(result.offline_sigma.min(), 3) << ", "
            << io::format_double(result.offline_sigma.max(), 3)
            << "]; community stabilizes around "
            << io::format_double(result.community_size.mean(), 0)
            << " phones -- no drift across rounds, matching the paper's "
               "stability remark.\n";
  return 0;
}
