// Extension experiment: learning the reserve price across rounds.
//
// A Hedge learner over a grid of reserves plays the truthful online
// mechanism round after round, scoring arms counterfactually on each
// realized market. The table shows the learner locking onto the best
// fixed reserve in hindsight and the per-round regret shrinking -- the
// platform tunes its knob without ever compromising the phones'
// incentives.
#include <iostream>

#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/adaptive_reserve.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Learns the platform's reserve price across rounds (Hedge over a "
      "reserve grid, platform-utility objective).");
  cli.add_int("rounds", 80, "rounds to learn over");
  cli.add_int("seed", 42, "RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::AdaptiveReserveConfig config;
  config.workload.num_slots = 20;
  config.workload.phone_arrival_rate = 3.0;
  config.workload.task_arrival_rate = 1.5;
  config.workload.mean_cost = 15.0;
  config.workload.task_value = Money::from_units(40);
  for (const std::int64_t r : {5, 10, 15, 20, 25, 30, 35}) {
    config.reserve_grid.push_back(Money::from_units(r));
  }
  config.rounds = static_cast<int>(cli.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "=== Adaptive reserve pricing (" << config.rounds
            << " rounds, platform-utility objective) ===\n\n";
  const sim::AdaptiveReserveResult result = sim::run_adaptive_reserve(config);

  io::TextTable arms({"reserve", "final weight", "cumulative objective",
                      "best fixed?"});
  const std::size_t best = result.best_fixed_arm();
  for (std::size_t arm = 0; arm < config.reserve_grid.size(); ++arm) {
    arms.add_row({config.reserve_grid[arm].to_string(),
                  io::format_double(result.final_weights[arm], 4),
                  io::format_double(result.cumulative_by_arm[arm], 1),
                  arm == best ? "<= best" : ""});
  }
  arms.print(std::cout);

  std::cout << '\n';
  io::TextTable trace({"round", "played reserve", "objective",
                       "best-arm objective"});
  for (const sim::AdaptiveRoundRecord& record : result.rounds) {
    if (record.round % 10 != 0 && record.round != 1) continue;
    trace.row()
        .cell(static_cast<std::int64_t>(record.round))
        .cell(config.reserve_grid[record.played_arm].to_string())
        .cell(record.played_objective, 1)
        .cell(record.best_arm_objective, 1);
  }
  trace.print(std::cout);

  std::cout << "\nplayed total "
            << io::format_double(result.cumulative_played, 1)
            << " vs best fixed reserve "
            << config.reserve_grid[best] << " at "
            << io::format_double(result.cumulative_by_arm[best], 1)
            << " -- average regret "
            << io::format_double(result.average_regret(config.rounds), 2)
            << " per round and shrinking; every round remains exactly "
               "truthful for the phones.\n";
  return 0;
}
