// Serving-path microbenches: end-to-end throughput of the sharded
// streaming engine across shard counts (submit -> queue -> worker ->
// RoundMachine -> drain), the batched producer handoff, and the two wire
// codecs -- mcs.serve.v1 JSONL vs the mcs.serve.b1 binary format -- both
// as pure decode loops and as full decode->submit->drain ingest pipelines
// (the binary-vs-JSONL events/sec headroom claim lives here).
//
// Counter-pass determinism: block admission means every generated event is
// processed exactly once, so the serve.events.* counters merged at drain
// are identical run to run and for every shard count -- safe for the exact
// comparison `mcs_cli bench-diff` applies to the committed baseline.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "serve/replay.hpp"
#include "serve/wire.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

std::vector<serve::ServeEvent> canned_events(int rounds) {
  serve::LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 7;
  std::vector<serve::ServeEvent> events;
  serve::generate_events(load, [&](const serve::ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

void BM_ServeEngine(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  for (auto _ : state) {
    serve::ServeConfig config;
    config.shards = static_cast<int>(state.range(0));
    config.admission = serve::ServeConfig::Admission::kBlock;
    serve::ServeEngine engine(config);
    for (const serve::ServeEvent& event : events) engine.submit(event);
    engine.drain();
    benchmark::DoNotOptimize(engine.stats());
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEngine)->Arg(1)->Arg(2)->Arg(4);

void BM_ServeEncode(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(4);
  for (auto _ : state) {
    for (const serve::ServeEvent& event : events) {
      benchmark::DoNotOptimize(serve::encode_serve_event(event));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEncode);

void BM_ServeDecode(benchmark::State& state) {
  std::vector<std::string> lines;
  for (const serve::ServeEvent& event : canned_events(4)) {
    lines.push_back(serve::encode_serve_event(event));
  }
  for (auto _ : state) {
    for (const std::string& line : lines) {
      benchmark::DoNotOptimize(serve::decode_serve_line(line));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ServeDecode);

void BM_ServeEngineBatched(benchmark::State& state) {
  // Producer-side ShardBatcher handoff: one queue lock per batch instead
  // of one per event. Outcomes and merged counters are pinned identical
  // to the per-event path by serve_queue_test.
  const std::vector<serve::ServeEvent> events = canned_events(16);
  for (auto _ : state) {
    serve::ServeConfig config;
    config.shards = static_cast<int>(state.range(0));
    config.batch_size = static_cast<std::size_t>(state.range(1));
    config.admission = serve::ServeConfig::Admission::kBlock;
    serve::ServeEngine engine(config);
    serve::ShardBatcher batcher(engine);
    for (const serve::ServeEvent& event : events) batcher.add(event);
    batcher.flush();
    engine.drain();
    benchmark::DoNotOptimize(engine.stats());
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEngineBatched)
    ->Args({4, 16})
    ->Args({8, 64});

void BM_ServeEncodeWire(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(4);
  std::string buffer;
  for (auto _ : state) {
    buffer.clear();
    for (const serve::ServeEvent& event : events) {
      serve::append_wire_frame(buffer, event);
    }
    benchmark::DoNotOptimize(buffer);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEncodeWire);

void BM_ServeDecodeWire(benchmark::State& state) {
  // Binary counterpart of BM_ServeDecode: same events, zero-copy frame
  // decode instead of JSON parsing.
  std::string frames;
  std::int64_t count = 0;
  for (const serve::ServeEvent& event : canned_events(4)) {
    serve::append_wire_frame(frames, event);
    ++count;
  }
  for (auto _ : state) {
    std::string_view rest(frames);
    while (!rest.empty()) {
      const auto decoded = serve::decode_wire_frame(rest);
      benchmark::DoNotOptimize(decoded);
      rest.remove_prefix(decoded->consumed);
    }
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ServeDecodeWire);

// Full ingest pipelines: a recorded stream decoded and pushed through the
// 8-shard engine with the batched handoff, stream parsing included. The
// two benches differ only in the wire format of the input bytes, so their
// items_per_second ratio is the end-to-end cost of the codec choice.
void pipeline_bench(benchmark::State& state, const std::string& stream) {
  std::int64_t events = 0;
  for (auto _ : state) {
    serve::ServeConfig config;
    config.shards = 8;
    config.batch_size = 64;
    config.admission = serve::ServeConfig::Admission::kBlock;
    serve::ServeEngine engine(config);
    std::istringstream is(stream);
    const serve::ReplayStats replayed =
        serve::replay_event_stream(is, engine, /*batch=*/true);
    engine.drain();
    events = replayed.events;
    benchmark::DoNotOptimize(engine.stats());
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(state.iterations() * events);
}

void BM_ServePipelineJsonl(benchmark::State& state) {
  std::ostringstream recorded;
  serve::LoadGenConfig load;
  load.rounds = 16;
  load.seed = 7;
  serve::write_event_stream(recorded, load);
  pipeline_bench(state, recorded.str());
}
BENCHMARK(BM_ServePipelineJsonl);

void BM_ServePipelineWire(benchmark::State& state) {
  std::ostringstream recorded;
  serve::LoadGenConfig load;
  load.rounds = 16;
  load.seed = 7;
  serve::write_wire_stream(recorded, load);
  pipeline_bench(state, recorded.str());
}
BENCHMARK(BM_ServePipelineWire);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_serve");
}
