// Serving-path microbenches: end-to-end throughput of the sharded
// streaming engine across shard counts (submit -> queue -> worker ->
// RoundMachine -> drain), plus the JSONL wire codec hot path.
//
// Counter-pass determinism: block admission means every generated event is
// processed exactly once, so the serve.events.* counters merged at drain
// are identical run to run and for every shard count -- safe for the exact
// comparison `mcs_cli bench-diff` applies to the committed baseline.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

std::vector<serve::ServeEvent> canned_events(int rounds) {
  serve::LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 7;
  std::vector<serve::ServeEvent> events;
  serve::generate_events(load, [&](const serve::ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

void BM_ServeEngine(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  for (auto _ : state) {
    serve::ServeConfig config;
    config.shards = static_cast<int>(state.range(0));
    config.admission = serve::ServeConfig::Admission::kBlock;
    serve::ServeEngine engine(config);
    for (const serve::ServeEvent& event : events) engine.submit(event);
    engine.drain();
    benchmark::DoNotOptimize(engine.stats());
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEngine)->Arg(1)->Arg(2)->Arg(4);

void BM_ServeEncode(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(4);
  for (auto _ : state) {
    for (const serve::ServeEvent& event : events) {
      benchmark::DoNotOptimize(serve::encode_serve_event(event));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEncode);

void BM_ServeDecode(benchmark::State& state) {
  std::vector<std::string> lines;
  for (const serve::ServeEvent& event : canned_events(4)) {
    lines.push_back(serve::encode_serve_event(event));
  }
  for (auto _ : state) {
    for (const std::string& line : lines) {
      benchmark::DoNotOptimize(serve::decode_serve_line(line));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ServeDecode);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_serve");
}
