// Live-telemetry-plane benches: what does turning the wall-clock plane on
// cost the serving hot path, and what latency does the engine actually
// deliver under load?
//
// Two kinds of numbers come out:
//   * benchmark timings (ns/op) -- report-only, like every duration here,
//   * latency quantiles from the live plane (queue_wait / round_close
//     p50/p99), exported as state counters; these are wall-clock
//     measurements and land in the report-only section of bench-diff.
//
// Counter-pass determinism: block admission only. A kReject engine sheds
// timing-dependently, which would make the serve.events.* counters drift
// run to run and trip the exact gate -- so shedding stays out of benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "obs/latency_sketch.hpp"
#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "serve/telemetry.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

std::vector<serve::ServeEvent> canned_events(int rounds) {
  serve::LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 7;
  std::vector<serve::ServeEvent> events;
  serve::generate_events(load, [&](const serve::ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

/// End-to-end engine run with the live plane recording every event; the
/// cumulative sketches of the last iteration feed the quantile counters.
void BM_ServeLiveLatency(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  obs::LatencySketchSnapshot queue_wait;
  obs::LatencySketchSnapshot round_latency;
  for (auto _ : state) {
    serve::LiveTelemetry live;
    serve::ServeConfig config;
    config.shards = static_cast<int>(state.range(0));
    config.admission = serve::ServeConfig::Admission::kBlock;
    config.live = &live;
    serve::ServeEngine engine(config);
    for (const serve::ServeEvent& event : events) engine.submit(event);
    engine.drain();
    benchmark::DoNotOptimize(engine.stats());
    const serve::LiveSummary summary = live.summary();
    queue_wait = summary.queue_wait;
    round_latency = summary.round_latency;
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["queue_wait_p50_us"] = queue_wait.quantile_us(0.5);
  state.counters["queue_wait_p99_us"] = queue_wait.quantile_us(0.99);
  state.counters["round_close_p50_us"] = round_latency.quantile_us(0.5);
  state.counters["round_close_p99_us"] = round_latency.quantile_us(0.99);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeLiveLatency)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The raw hook cost: one sketch record per call, the engine's per-event
/// overhead when the live plane is attached.
void BM_LatencySketchRecord(benchmark::State& state) {
  obs::LatencySketch sketch;
  std::uint64_t value = 1;
  for (auto _ : state) {
    sketch.record_ns(value);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
    benchmark::DoNotOptimize(value);
  }
  benchmark::DoNotOptimize(sketch.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencySketchRecord);

/// Snapshot + window roll + health classification -- the publisher's
/// periodic cost, off the hot path but worth pinning down.
void BM_ServeSnapshot(benchmark::State& state) {
  obs::FakeClock clock;
  serve::LiveTelemetryConfig live_config;
  live_config.clock = &clock;
  serve::LiveTelemetry live(live_config);
  live.attach(4, 1024);
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 256; ++i) {
      live.on_submit(shard, i % 7);
      live.on_process(shard, static_cast<std::uint64_t>(1000 + i), i % 5);
    }
    live.on_round_close(shard, 2'000'000);
  }
  for (auto _ : state) {
    clock.advance_ms(100);
    benchmark::DoNotOptimize(live.take_snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeSnapshot);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_serve_latency");
}
