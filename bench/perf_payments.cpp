// Algorithm-2 payment microbenches: shared-prefix counterfactuals vs the
// naive full-replay oracle, and the parallel per-winner fan-out.
//
// The pinned counter pass (telemetry_main) makes the work counters the
// story: the full-replay engine racks up auction.greedy.allocation_runs /
// slots_processed per winner, while the shared-prefix engine replaces
// them with auction.counterfactual.payment_forks whose slots_skipped
// share is exactly the prefix the checkpoints let it not re-run.
#include <benchmark/benchmark.h>

#include "auction/counterfactual.hpp"
#include "auction/critical_value.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/workload.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

model::Scenario scaled_scenario(int slots, std::uint64_t seed) {
  model::WorkloadConfig workload;
  workload.num_slots = slots;
  Rng rng(seed);
  return model::generate_scenario(workload, rng);
}

auction::OnlineGreedyConfig engine_config(
    auction::OnlineGreedyConfig::PaymentEngine engine, int threads = 1) {
  auction::OnlineGreedyConfig config;
  config.payment_engine = engine;
  config.payment_threads = threads;
  return config;
}

void BM_Payments_SharedPrefix(benchmark::State& state) {
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OnlineGreedyMechanism mechanism(engine_config(
      auction::OnlineGreedyConfig::PaymentEngine::kSharedPrefix));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(s, bids));
  }
  state.counters["phones"] = static_cast<double>(s.phone_count());
  state.counters["tasks"] = static_cast<double>(s.task_count());
}
BENCHMARK(BM_Payments_SharedPrefix)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_Payments_FullReplay(benchmark::State& state) {
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OnlineGreedyMechanism mechanism(engine_config(
      auction::OnlineGreedyConfig::PaymentEngine::kFullReplay));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(s, bids));
  }
}
BENCHMARK(BM_Payments_FullReplay)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_Payments_SharedPrefixParallel(benchmark::State& state) {
  // Fan the per-winner derivations over state.range(1) workers. Counters
  // merge through the deterministic registry sum, so the pinned counter
  // pass reports the same totals as the serial benches.
  const model::Scenario s = scaled_scenario(40, 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OnlineGreedyMechanism mechanism(engine_config(
      auction::OnlineGreedyConfig::PaymentEngine::kSharedPrefix,
      static_cast<int>(state.range(1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(s, bids));
  }
}
BENCHMARK(BM_Payments_SharedPrefixParallel)
    ->Args({40, 2})
    ->Args({40, 4})
    ->Args({40, 8});

void BM_CriticalValue_SharedPrefixBisection(benchmark::State& state) {
  // Every bisection probe forks from the checkpoint at the phone's
  // arrival instead of replaying from slot 1.
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OnlineGreedyConfig config;
  const auction::Outcome outcome =
      auction::OnlineGreedyMechanism(config).run(s, bids);
  const auto winners = outcome.allocation.winners();
  for (auto _ : state) {
    const auction::CounterfactualEngine engine(s, bids, config);
    for (const PhoneId winner : winners) {
      benchmark::DoNotOptimize(auction::greedy_critical_value(engine, winner));
    }
  }
  state.counters["winners"] = static_cast<double>(winners.size());
}
BENCHMARK(BM_CriticalValue_SharedPrefixBisection)->Arg(10)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_payments");
}
