// Figs. 3, 4 and 5: the paper's worked examples, replayed step by step.
//
//  * Fig. 3 -- the bipartite graph the offline mechanism builds;
//  * Fig. 4 -- the online greedy allocation slot by slot, including the
//    dynamic pool, plus the Algorithm 2 payment for the paper's phone
//    (paid exactly 9);
//  * Fig. 5 -- the per-slot second-price baseline rewarding a delayed
//    arrival (payment 4 -> 8), i.e. the manipulation that motivates
//    Algorithm 2.
#include <iostream>

#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/second_price.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/paper_examples.hpp"

namespace {

void print_fig3() {
  using namespace mcs;
  std::cout << "=== Fig. 3: weighted bipartite graph construction ===\n";
  const model::Scenario s = model::fig3_scenario();
  std::cout << model::describe(s) << '\n';
  const matching::WeightMatrix g =
      auction::OfflineVcgMechanism::build_graph(s, s.truthful_bids());
  io::TextTable table({"task", "slot", "edges (phone:weight)"});
  for (int t = 0; t < g.rows(); ++t) {
    std::string edges;
    for (int p = 0; p < g.cols(); ++p) {
      if (const auto w = g.get(t, p)) {
        if (!edges.empty()) edges += "  ";
        edges += std::to_string(p + 1) + ':' + w->to_string();
      }
    }
    table.add_row({std::to_string(t),
                   s.tasks[static_cast<std::size_t>(t)].slot.value() == 1
                       ? "1"
                       : "2",
                   edges});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_fig4() {
  using namespace mcs;
  std::cout << "=== Fig. 4: online winning-bids determination ===\n";
  const model::Scenario s = model::fig4_scenario();
  std::cout << model::describe(s) << '\n';

  const model::BidProfile bids = s.truthful_bids();
  const auction::GreedyRun run = auction::run_greedy_allocation(s, bids);
  io::TextTable table({"slot", "dynamic pool (phone@cost)", "winner"});
  for (const auction::GreedySlotRecord& record : run.slots) {
    std::string pool;
    for (const PhoneId phone : record.pool) {
      if (!pool.empty()) pool += "  ";
      pool += std::to_string(phone.value() + 1) + '@' +
              bids[static_cast<std::size_t>(phone.value())]
                  .claimed_cost.to_string();
    }
    std::string winner;
    for (const PhoneId phone : record.winners) {
      winner += std::to_string(phone.value() + 1);
    }
    table.add_row({std::to_string(record.slot.value()), pool, winner});
  }
  table.print(std::cout);
  std::cout << "(phone numbers are the paper's 1-based smartphone ids)\n\n";

  const auction::OnlineGreedyMechanism mechanism;
  const auction::Outcome outcome = mechanism.run(s, bids);
  std::cout << "Algorithm 2 payment to Smartphone 1: "
            << outcome.payments[0]
            << "  (paper's worked example: 9 -- max of the counterfactual "
               "winners 4, 6, 8, 9)\n\n";
}

void print_fig5() {
  using namespace mcs;
  std::cout << "=== Fig. 5: why per-slot second price fails ===\n";
  const model::Scenario s = model::fig4_scenario();
  const auction::SecondPriceBaseline baseline;

  const auction::Outcome truthful = baseline.run_truthful(s);
  const model::BidProfile delayed = model::with_bid(
      s.truthful_bids(), PhoneId{0}, model::fig5_delayed_bid_phone1());
  const auction::Outcome deviant = baseline.run(s, delayed);

  io::TextTable table(
      {"Smartphone 1 report", "payment", "utility (cost 3)"});
  table.add_row({"truthful [2,5]", truthful.payments[0].to_string(),
                 truthful.utility(s, PhoneId{0}).to_string()});
  table.add_row({"delayed  [4,5]", deviant.payments[0].to_string(),
                 deviant.utility(s, PhoneId{0}).to_string()});
  table.print(std::cout);
  std::cout << "Delaying the reported arrival raises the second-price "
               "payment from 4 to 8 -- the scheme is not time-truthful.\n\n";

  const auction::OnlineGreedyMechanism online;
  const auction::Outcome online_truthful = online.run_truthful(s);
  const auction::Outcome online_deviant = online.run(s, delayed);
  std::cout << "Under the proposed online mechanism the same deviation "
            << "yields utility "
            << online_deviant.utility(s, PhoneId{0}) << " vs truthful "
            << online_truthful.utility(s, PhoneId{0})
            << " -- no gain (Theorem 4).\n";
}

}  // namespace

int main(int argc, char** argv) {
  mcs::io::CliParser cli(
      "Replays the paper's worked examples (Figs. 3, 4, 5) step by step.");
  if (!cli.parse(argc, argv)) return 0;
  print_fig3();
  print_fig4();
  print_fig5();
  return 0;
}
