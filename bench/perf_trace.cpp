// Trace-plane benches: what does turning per-round causal tracing on
// (span timelines + tail sampler + phase sketches) cost the serving hot
// path, and what does one raw span record cost?
//
// The headline number is BM_ServeTraceOverhead's overhead_pct counter:
// the paired events/sec loss of trace-on vs trace-off on the same canned
// stream, the figure the acceptance budget (< 5%) tracks. Durations and
// the derived eps/overhead counters are wall-clock and land in
// bench-diff's report-only section; the deterministic gate sees only the
// registry work counters.
//
// Counter-pass determinism: block admission only, and the trace plane by
// contract writes zero registry counters, so the trace-on counter set is
// bit-identical to trace-off, run to run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <vector>

#include "obs/wallclock.hpp"
#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "serve/trace_plane.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

std::vector<serve::ServeEvent> canned_events(int rounds) {
  serve::LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 7;
  std::vector<serve::ServeEvent> events;
  serve::generate_events(load, [&](const serve::ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

/// One engine run over `events`; attaches the trace plane when non-null.
void run_engine(const std::vector<serve::ServeEvent>& events, int shards,
                serve::TracePlane* trace) {
  serve::ServeConfig config;
  config.shards = shards;
  config.admission = serve::ServeConfig::Admission::kBlock;
  config.trace = trace;
  serve::ServeEngine engine(config);
  for (const serve::ServeEvent& event : events) engine.submit(event);
  engine.drain();
  benchmark::DoNotOptimize(engine.stats());
}

/// Baseline: the engine with the trace plane detached.
void BM_ServeTraceOff(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  for (auto _ : state) {
    run_engine(events, static_cast<int>(state.range(0)), nullptr);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeTraceOff)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The same stream with every round traced and retained (threshold 1 ns),
/// the worst case for the plane: full span timelines plus pinned rings.
void BM_ServeTraceOn(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  std::int64_t retained = 0;
  for (auto _ : state) {
    serve::TracePlaneConfig config;
    config.slow_threshold_ns = 1;
    serve::TracePlane trace(config);
    run_engine(events, static_cast<int>(state.range(0)), &trace);
    retained = trace.summary().retained;
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["retained"] = static_cast<double>(retained);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeTraceOn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Paired on/off runs inside each iteration: both legs see the same
/// machine state (cache, frequency), so the eps ratio isolates the
/// plane's cost. overhead_pct is the acceptance-tracked number.
void BM_ServeTraceOverhead(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  const int shards = static_cast<int>(state.range(0));
  std::chrono::nanoseconds off_ns{0};
  std::chrono::nanoseconds on_ns{0};
  for (auto _ : state) {
    const auto off_start = std::chrono::steady_clock::now();
    run_engine(events, shards, nullptr);
    off_ns += std::chrono::steady_clock::now() - off_start;

    serve::TracePlaneConfig config;
    config.slow_threshold_ns = 1;
    serve::TracePlane trace(config);
    const auto on_start = std::chrono::steady_clock::now();
    run_engine(events, shards, &trace);
    on_ns += std::chrono::steady_clock::now() - on_start;
    benchmark::DoNotOptimize(trace.summary().retained);
  }
  const double total_events =
      static_cast<double>(state.iterations()) *
      static_cast<double>(events.size());
  const double eps_off =
      off_ns.count() > 0
          ? total_events / (static_cast<double>(off_ns.count()) / 1e9)
          : 0.0;
  const double eps_on =
      on_ns.count() > 0
          ? total_events / (static_cast<double>(on_ns.count()) / 1e9)
          : 0.0;
  state.counters["eps_off"] = eps_off;
  state.counters["eps_on"] = eps_on;
  state.counters["overhead_pct"] =
      eps_off > 0.0 ? (1.0 - eps_on / eps_off) * 100.0 : 0.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()) * 2);
}
BENCHMARK(BM_ServeTraceOverhead)->Arg(1)->Arg(8)->UseRealTime();

/// Raw span-record cost: one open round absorbing slot ticks under a fake
/// clock -- the per-event price of the timeline itself, no engine around
/// it. The trace is resealed periodically so the span vector stays at
/// working size instead of saturating the cap.
void BM_TraceSpanRecord(benchmark::State& state) {
  obs::FakeClock clock;
  serve::TracePlaneConfig config;
  config.clock = &clock;
  config.slow_threshold_ns = 1'000'000'000;  // keep the ring cold
  serve::TracePlane plane(config);
  plane.attach(1);
  std::int64_t round = 0;
  std::int32_t slot = 0;
  std::uint64_t t = 0;
  plane.on_round_open(0, round, t, t, 0);
  for (auto _ : state) {
    plane.on_slot_tick(0, round, slot, t, t + 10);
    t += 20;
    if (++slot == 64) {
      slot = 0;
      plane.on_round_complete(0, round, t, t, t, 0);
      ++round;
      plane.on_round_open(0, round, t, t, 0);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanRecord);

/// Post-drain export cost of a fully retained run: JSONL rendering of the
/// rings, the summary, and the exemplar table.
void BM_TraceStreamWrite(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  serve::TracePlaneConfig config;
  config.slow_threshold_ns = 1;
  serve::TracePlane trace(config);
  run_engine(events, 2, &trace);
  for (auto _ : state) {
    std::ostringstream os;
    serve::write_trace_stream(os, trace);
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceStreamWrite);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_trace");
}
