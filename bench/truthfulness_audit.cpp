// Theorems 1, 2, 4, 5: truthfulness and individual rationality, verified
// empirically by exhaustive deviation grids -- and the Fig. 5 negative
// result for the per-slot second-price baseline on the same instances.
#include <iostream>

#include "analysis/rationality.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/second_price.hpp"
#include "common/rng.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/paper_examples.hpp"
#include "telemetry_scope.hpp"

namespace {

mcs::model::Scenario random_instance(mcs::Rng& rng) {
  using namespace mcs;
  // Scarcity-free family (full-round phones, supply > demand): the regime
  // in which Theorem 4's critical-value payment is exact (DESIGN.md Sec. 5).
  const int tasks = static_cast<int>(rng.uniform_int(1, 4));
  const int phones = tasks + 2 + static_cast<int>(rng.uniform_int(0, 3));
  model::ScenarioBuilder builder(5);
  builder.value(80);
  for (int i = 0; i < phones; ++i) {
    builder.phone(1, 5, rng.uniform_int(1, 50));
  }
  for (int k = 0; k < tasks; ++k) {
    builder.task(static_cast<mcs::Slot::rep_type>(rng.uniform_int(1, 5)));
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcs;

  // Consumes --telemetry-out before the strict flag parser below; with it,
  // the deviation grids' work counters land in BENCH_telemetry.json.
  const mcs_bench::TelemetryScope telemetry(argc, argv, "truthfulness_audit");

  io::CliParser cli(
      "Audits truthfulness (Theorems 1/4) and individual rationality "
      "(Theorems 2/5) by exhaustive deviation testing; shows the "
      "second-price baseline failing the same audit (Fig. 5).");
  cli.add_int("instances", 25, "random instances to audit");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int instances = static_cast<int>(cli.get_int("instances"));

  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;
  const auction::SecondPriceBaseline second_price;

  std::cout << "=== Truthfulness & IR audits ===\n\n";
  std::cout << "-- the paper's Fig. 4 instance --\n";
  {
    const model::Scenario s = model::fig4_scenario();
    io::TextTable table({"mechanism", "truthfulness audit", "IR audit"});
    for (const auction::Mechanism* mechanism :
         std::initializer_list<const auction::Mechanism*>{
             &online, &offline, &second_price}) {
      const analysis::TruthfulnessReport truth =
          analysis::audit_truthfulness(*mechanism, s);
      const analysis::RationalityReport rationality =
          analysis::audit_individual_rationality(*mechanism, s);
      table.add_row({mechanism->name(),
                     truth.truthful()
                         ? "PASS (" + std::to_string(truth.deviations_tested) +
                               " deviations)"
                         : "FAIL (max gain " + truth.max_gain().to_string() +
                               ")",
                     rationality.individually_rational() ? "PASS" : "FAIL"});
    }
    table.print(std::cout);
    std::cout << "the second-price FAIL reproduces Fig. 5: delaying the "
                 "arrival raises the payment 4 -> 8 (gain 4).\n\n";
  }

  std::cout << "-- " << instances << " randomized instances --\n";
  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));
  int online_violations = 0;
  int offline_violations = 0;
  int baseline_violations = 0;
  int deviations_total = 0;
  for (int k = 0; k < instances; ++k) {
    Rng rng = parent.fork(static_cast<std::uint64_t>(k));
    const model::Scenario s = random_instance(rng);
    const analysis::TruthfulnessReport on =
        analysis::audit_truthfulness(online, s);
    const analysis::TruthfulnessReport off =
        analysis::audit_truthfulness(offline, s);
    const analysis::TruthfulnessReport base =
        analysis::audit_truthfulness(second_price, s);
    online_violations += static_cast<int>(on.violations.size());
    offline_violations += static_cast<int>(off.violations.size());
    baseline_violations += static_cast<int>(base.violations.size());
    deviations_total += on.deviations_tested;
  }
  io::TextTable table({"mechanism", "profitable misreports found"});
  table.add_row({"online-greedy", std::to_string(online_violations)});
  table.add_row({"offline-vcg", std::to_string(offline_violations)});
  table.add_row(
      {"per-slot-second-price", std::to_string(baseline_violations)});
  table.print(std::cout);
  std::cout << '\n'
            << deviations_total
            << " deviations tested per mechanism; zero for the proposed "
               "mechanisms is the empirical face of Theorems 1 and 4. (The "
               "baseline's guaranteed failure mode is the timing "
               "manipulation shown on the Fig. 4 instance above.)\n";
  return 0;
}
