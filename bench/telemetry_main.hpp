// Shared main() for the perf_* google-benchmark binaries.
//
// Replaces benchmark::benchmark_main so the perf benches can emit a
// machine-readable telemetry report next to the human-oriented console
// output. When --telemetry-out=<path> is passed (or
// MCS_BENCH_TELEMETRY_OUT is set) the binary runs TWO passes:
//
//  1. Timing pass: the registered benchmarks exactly as google-benchmark
//     would run them (adaptive iteration counts, the user's
//     --benchmark_min_time / --benchmark_out flags). No registry is
//     installed, so the numbers measure the telemetry-off fast path.
//  2. Counter pass: the same benchmarks re-run pinned to ONE iteration
//     each (--benchmark_min_time=0 stops google-benchmark after its first
//     probe iteration) with a MetricsRegistry installed and console
//     output suppressed. With the bench workloads seeded, the work
//     counters recorded by the instrumented library code (Hungarian
//     iterations, SPFA pops, critical-value probes, ...) are therefore
//     IDENTICAL run to run and machine to machine -- the deterministic
//     baseline that `mcs_cli bench-diff` compares exactly.
//
// Without the flag only pass 1 runs and nothing else changes.
// scripts/collect_bench.sh merges the per-binary reports into
// BENCH_telemetry.json at the repo root.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry_scope.hpp"

namespace mcs_bench {

/// Swallows all reporting: the counter pass re-runs every benchmark, and
/// repeating the console table with 1-iteration timings would only
/// mislead.
class NullReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& /*context*/) override { return true; }
  void ReportRuns(const std::vector<Run>& /*runs*/) override {}
};

inline int telemetry_main(int argc, char** argv, std::string_view bench_name) {
  // Extract --telemetry-out=<path> before google-benchmark sees (and
  // rejects) the unknown flag.
  const std::string out_path = take_telemetry_flag(argc, argv);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();  // pass 1: timing, telemetry off

  if (!out_path.empty()) {
    // Pass 2: pinned single-iteration re-run for deterministic counters.
    // Re-Initialize overrides the adaptive-timing flags (and disables any
    // --benchmark_out so the timing pass's file survives) while keeping
    // the user's --benchmark_filter.
    std::string pin_min_time = "--benchmark_min_time=0";
    std::string pin_repetitions = "--benchmark_repetitions=1";
    std::string pin_out = "--benchmark_out=";
    std::vector<char*> pin_argv{argv[0], pin_min_time.data(),
                                pin_repetitions.data(), pin_out.data()};
    int pin_argc = static_cast<int>(pin_argv.size());
    benchmark::Initialize(&pin_argc, pin_argv.data());

    // Registry only, no TraceCollector: even one iteration per benchmark
    // would append one span tree each; the aggregate span.<name>_us
    // histograms already capture the phase timings.
    mcs::obs::MetricsRegistry registry;
    mcs::obs::preregister_headline_counters(registry);
    {
      const mcs::obs::ScopedRegistry registry_guard(&registry);
      const mcs::obs::ScopedTimer timer("bench.total_duration_us");
      NullReporter quiet;
      benchmark::RunSpecifiedBenchmarks(&quiet);
    }
    if (!write_bench_telemetry(out_path, registry, bench_name)) {
      benchmark::Shutdown();
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace mcs_bench
