// Shared main() for the perf_* google-benchmark binaries.
//
// Replaces benchmark::benchmark_main so the perf benches can emit a
// machine-readable telemetry report next to the human-oriented console
// output: when --telemetry-out=<path> is passed (or MCS_BENCH_TELEMETRY_OUT
// is set) a MetricsRegistry + TraceCollector are installed for the run and
// the work counters recorded by the instrumented library code (Hungarian
// iterations, SPFA pops, critical-value probes, ...) are written as one
// "mcs.telemetry.v1" JSON object. Without the flag the registry stays
// uninstalled, so default benchmark numbers measure the telemetry-off fast
// path. scripts/collect_bench.sh merges the per-binary reports into
// BENCH_telemetry.json at the repo root.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcs_bench {

inline int telemetry_main(int argc, char** argv, std::string_view bench_name) {
  // Extract --telemetry-out=<path> before google-benchmark sees (and
  // rejects) the unknown flag.
  std::string out_path;
  if (const char* env = std::getenv("MCS_BENCH_TELEMETRY_OUT")) {
    out_path = env;
  }
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--telemetry-out=";
    if (arg.rfind(kFlag, 0) == 0) {
      out_path = std::string(arg.substr(kFlag.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  // Registry only, no TraceCollector: the benchmark loop would append one
  // span tree per iteration (unbounded growth); the aggregate
  // span.<name>_us histograms already capture the phase timings.
  mcs::obs::MetricsRegistry registry;
  std::optional<mcs::obs::ScopedRegistry> registry_guard;
  if (!out_path.empty()) {
    registry_guard.emplace(&registry);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    const mcs::obs::ScopedTimer timer("bench.total_duration_us");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();

  registry_guard.reset();
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open telemetry output: " << out_path << '\n';
      return 1;
    }
    mcs::obs::write_metrics_json(out, registry, nullptr,
                                 {{"tool", std::string(bench_name)}});
    std::cerr << "telemetry written to " << out_path << '\n';
  }
  return 0;
}

}  // namespace mcs_bench
