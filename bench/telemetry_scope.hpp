// Bench telemetry plumbing shared by every bench binary that reports into
// BENCH_telemetry.json -- both the google-benchmark perf_* binaries
// (bench/telemetry_main.hpp) and plain table/figure binaries that opt in
// via TelemetryScope. Deliberately free of any google-benchmark
// dependency so the plain binaries do not grow one.
//
// The contract with scripts/collect_bench.sh: when --telemetry-out=<path>
// is passed (or MCS_BENCH_TELEMETRY_OUT is set) the binary writes one
// "mcs.telemetry.v1" JSON report of its deterministic work counters to
// <path>; without it nothing is installed and the run measures the
// telemetry-off fast path. The headline counters are pre-registered so
// every report carries the same key set -- bench-diff treats a missing
// key as a removed metric.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mcs_bench {

/// Strips --telemetry-out=<path> from argv (before stricter flag parsers
/// see it) and returns the requested path; the MCS_BENCH_TELEMETRY_OUT
/// environment variable supplies a default the flag overrides.
inline std::string take_telemetry_flag(int& argc, char** argv) {
  std::string out_path;
  if (const char* env = std::getenv("MCS_BENCH_TELEMETRY_OUT")) {
    out_path = env;
  }
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--telemetry-out=";
    if (arg.rfind(kFlag, 0) == 0) {
      out_path = std::string(arg.substr(kFlag.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return out_path;
}

/// Writes the registry as one mcs.telemetry.v1 report; returns false (with
/// a message on stderr) when the path cannot be opened.
inline bool write_bench_telemetry(const std::string& path,
                                  const mcs::obs::MetricsRegistry& registry,
                                  std::string_view bench_name) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open telemetry output: " << path << '\n';
    return false;
  }
  mcs::obs::write_metrics_json(out, registry, nullptr,
                               {{"tool", std::string(bench_name)}});
  std::cerr << "telemetry written to " << path << '\n';
  return true;
}

/// RAII telemetry session for a plain (non-google-benchmark) bench binary:
/// construct before parsing flags (it consumes --telemetry-out), and the
/// destructor writes the report after main()'s work ran. When no output
/// was requested nothing is installed and the whole run stays on the
/// telemetry-off fast path.
class TelemetryScope {
 public:
  TelemetryScope(int& argc, char** argv, std::string_view bench_name)
      : bench_name_(bench_name), path_(take_telemetry_flag(argc, argv)) {
    if (path_.empty()) return;
    mcs::obs::preregister_headline_counters(registry_);
    guard_.emplace(&registry_);
  }

  ~TelemetryScope() {
    if (path_.empty()) return;
    guard_.reset();
    write_bench_telemetry(path_, registry_, bench_name_);
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  std::string bench_name_;
  std::string path_;
  mcs::obs::MetricsRegistry registry_;
  std::optional<mcs::obs::ScopedRegistry> guard_;
};

}  // namespace mcs_bench
