// Fig. 6: social welfare omega vs number of slots m in {30..80}.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_figure_binary(
      "fig6",
      "welfare increases with m for both mechanisms; offline >= online and "
      "the gap widens as m grows",
      argc, argv);
}
