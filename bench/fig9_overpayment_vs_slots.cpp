// Fig. 9: overpayment ratio sigma vs number of slots m in {30..80}.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_figure_binary(
      "fig9",
      "sigma stays roughly stable in m; the offline mechanism overpays more "
      "than the online one",
      argc, argv);
}
