// Table I: the default simulation settings, echoed together with one full
// simulation at exactly those defaults (all metrics for both mechanisms).
#include <iostream>

#include "io/cli.hpp"
#include "io/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Reproduces Table I (summary of default settings) and runs the "
      "simulation at exactly those defaults.");
  cli.add_int("reps", 50, "simulation repetitions");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimulationConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps"));
  config.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const model::WorkloadConfig& w = config.workload;

  std::cout << "=== Table I: summary of default settings ===\n\n";
  io::TextTable settings({"Parameter", "Default value"});
  settings.add_row({"Arrival rate lambda of smartphones",
                    io::format_double(w.phone_arrival_rate, 0)});
  settings.add_row({"Arrival rate lambda_t of sensing tasks",
                    io::format_double(w.task_arrival_rate, 0)});
  settings.add_row({"Average of real costs c-bar",
                    io::format_double(w.mean_cost, 0)});
  settings.add_row({"Number of slots m", std::to_string(w.num_slots)});
  settings.add_row({"Average length of active time",
                    io::format_double(w.mean_active_length, 0)});
  settings.add_row({"Task value nu (substitution, see DESIGN.md)",
                    w.task_value.to_string()});
  settings.add_row({"Cost distribution (substitution)",
                    model::to_string(w.cost_distribution)});
  settings.print(std::cout);

  std::cout << "\n=== One simulation at the defaults (" << config.repetitions
            << " repetitions, seed " << config.base_seed << ") ===\n\n";

  const sim::StandardMechanisms mechanisms;
  const sim::SimulationResult result =
      sim::simulate(config, mechanisms.pointers());

  io::TextTable table({"metric", "online", "offline"});
  const sim::MechanismAggregate& on = result.mechanisms.at(0);
  const sim::MechanismAggregate& off = result.mechanisms.at(1);
  table.add_row({"social welfare (mean)",
                 io::format_double(on.social_welfare.mean(), 1),
                 io::format_double(off.social_welfare.mean(), 1)});
  table.add_row({"overpayment ratio (mean)",
                 io::format_double(on.overpayment_ratio.mean(), 4),
                 io::format_double(off.overpayment_ratio.mean(), 4)});
  table.add_row({"total payment (mean)",
                 io::format_double(on.total_payment.mean(), 1),
                 io::format_double(off.total_payment.mean(), 1)});
  table.add_row({"task completion rate (mean)",
                 io::format_double(on.completion_rate.mean(), 4),
                 io::format_double(off.completion_rate.mean(), 4)});
  table.add_row({"platform utility (mean)",
                 io::format_double(on.platform_utility.mean(), 1),
                 io::format_double(off.platform_utility.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nworkload: " << io::format_double(result.phones_per_round.mean(), 1)
            << " phones/round, "
            << io::format_double(result.tasks_per_round.mean(), 1)
            << " tasks/round (expected 300 and 150 at the defaults)\n";
  return 0;
}
