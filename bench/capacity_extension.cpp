// Extension experiment: multi-task smartphones (capacitated offline VCG).
//
// A supply-constrained campaign (more tasks than phones) is rerun with
// increasing per-phone capacity. Capacity relieves scarcity: completion
// and welfare climb until every buffered task can be served, while the
// payment per served task falls as competition for the marginal task
// returns. The paper's model is the capacity = 1 row.
#include <iostream>

#include "auction/capacity_vcg.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/workload.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Extension: capacitated offline VCG (phones serve up to k tasks, one "
      "per slot) on a supply-constrained workload.");
  cli.add_int("reps", 10, "repetitions per capacity");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));

  model::WorkloadConfig workload;
  workload.num_slots = 20;
  workload.phone_arrival_rate = 1.5;  // scarce supply...
  workload.task_arrival_rate = 3.0;   // ...relative to demand
  workload.mean_cost = 20.0;
  workload.mean_active_length = 5.0;
  workload.task_value = Money::from_units(50);

  std::cout << "=== Capacitated VCG: welfare vs per-phone capacity ===\n"
            << "m=20, lambda=1.5 phones/slot vs lambda_t=3 tasks/slot "
               "(supply-constrained), "
            << reps << " reps\n\n";

  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));
  io::TextTable table({"capacity", "welfare", "completion %", "payment/task"});
  for (int capacity = 1; capacity <= 5; ++capacity) {
    RunningStats welfare;
    RunningStats completion;
    RunningStats payment_per_task;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
      const model::Scenario s = model::generate_scenario(workload, rng);
      const model::BidProfile bids = s.truthful_bids();
      const auction::CapacityOutcome outcome = auction::run_capacity_vcg(
          s, bids, auction::uniform_capacity(s.phone_count(), capacity));
      welfare.add(outcome.social_welfare(s).to_double());
      if (s.task_count() > 0) {
        completion.add(100.0 * outcome.allocated_count() / s.task_count());
      }
      if (outcome.allocated_count() > 0) {
        payment_per_task.add(outcome.total_payment().to_double() /
                             outcome.allocated_count());
      }
    }
    table.row()
        .cell(static_cast<std::int64_t>(capacity))
        .cell(welfare.mean(), 1)
        .cell(completion.mean(), 1)
        .cell(payment_per_task.mean(), 2);
  }
  table.print(std::cout);
  std::cout << "\ncapacity = 1 is the paper's model; extra capacity converts "
               "unserved tasks into welfare and pushes per-task payments "
               "down as marginal competition returns.\n";
  return 0;
}
