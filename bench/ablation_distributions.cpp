// Ablation: robustness of the evaluation to the (unspecified) cost
// distribution.
//
// The paper states only the *mean* real cost; DESIGN.md records our
// uniform-distribution substitution. This bench reruns the Table-I point
// under the three supported cost families with the same mean and shows the
// figure-level conclusions are distribution-robust: welfare ordering
// (offline >= online), sigma magnitude and stability, and completion.
#include <iostream>

#include "analysis/metrics.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/workload.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Ablation: Table-I point under uniform / truncated-normal / "
      "truncated-exponential real costs with the same mean.");
  cli.add_int("reps", 30, "repetitions per distribution");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));

  std::cout << "=== Cost-distribution ablation (mean cost 25, " << reps
            << " reps) ===\n\n";

  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));
  const auction::OnlineGreedyMechanism online;
  const auction::OfflineVcgMechanism offline;

  io::TextTable table({"distribution", "welfare(on)", "welfare(off)",
                       "sigma(on)", "sigma(off)"});
  for (const model::CostDistribution distribution :
       {model::CostDistribution::kUniform, model::CostDistribution::kNormal,
        model::CostDistribution::kExponential}) {
    model::WorkloadConfig workload;  // Table-I defaults
    workload.cost_distribution = distribution;
    RunningStats welfare_on;
    RunningStats welfare_off;
    RunningStats sigma_on;
    RunningStats sigma_off;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
      const model::Scenario s = model::generate_scenario(workload, rng);
      const model::BidProfile bids = s.truthful_bids();
      const analysis::RoundMetrics on =
          analysis::compute_metrics(s, bids, online.run(s, bids));
      const analysis::RoundMetrics off =
          analysis::compute_metrics(s, bids, offline.run(s, bids));
      welfare_on.add(on.social_welfare.to_double());
      welfare_off.add(off.social_welfare.to_double());
      sigma_on.add(on.overpayment_ratio);
      sigma_off.add(off.overpayment_ratio);
    }
    table.add_row({model::to_string(distribution),
                   io::format_double(welfare_on.mean(), 1),
                   io::format_double(welfare_off.mean(), 1),
                   io::format_double(sigma_on.mean(), 4),
                   io::format_double(sigma_off.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nthe offline >= online welfare ordering survives all three "
               "cost families; sigma's *level* tracks cost dispersion "
               "(tight normal -> ~0.3, heavy-tailed exponential -> ~1.4), "
               "which is why absolute sigma cannot be matched to the paper "
               "without knowing its cost distribution (EXPERIMENTS.md).\n";
  return 0;
}
