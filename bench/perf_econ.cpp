// Economic-plane benches: what does turning the econ telemetry plane on
// (capture-mode rounds + per-round invariants + reference pricing + the
// sampled deep sentinel) cost the serving hot path?
//
// The headline number is BM_ServeEconOverhead's overhead_pct counter: the
// paired events/sec loss of econ-on vs econ-off on the same canned stream,
// the figure the acceptance budget (< 5%) tracks. Durations and the derived
// eps/overhead counters are wall-clock and land in bench-diff's report-only
// section; the deterministic gate sees only the registry work counters.
//
// Counter-pass determinism: block admission only (see perf_serve_latency),
// and the loadgen traffic is truthful, so the sentinel's sole registry
// counter -- econ.violations -- stays at zero and the econ-on counter set
// is bit-identical to econ-off, run to run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <vector>

#include "obs/wallclock.hpp"
#include "serve/econ_telemetry.hpp"
#include "serve/engine.hpp"
#include "serve/event.hpp"
#include "serve/loadgen.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

std::vector<serve::ServeEvent> canned_events(int rounds) {
  serve::LoadGenConfig load;
  load.rounds = rounds;
  load.seed = 7;
  std::vector<serve::ServeEvent> events;
  serve::generate_events(load, [&](const serve::ServeEvent& event) {
    events.push_back(event);
    return true;
  });
  return events;
}

/// One engine run over `events`; attaches the econ plane when non-null.
void run_engine(const std::vector<serve::ServeEvent>& events, int shards,
                serve::EconTelemetry* econ) {
  serve::ServeConfig config;
  config.shards = shards;
  config.admission = serve::ServeConfig::Admission::kBlock;
  config.econ = econ;
  serve::ServeEngine engine(config);
  for (const serve::ServeEvent& event : events) engine.submit(event);
  engine.drain();
  benchmark::DoNotOptimize(engine.stats());
}

/// Baseline: the engine with the econ plane detached (capture mode off).
void BM_ServeEconOff(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  for (auto _ : state) {
    run_engine(events, static_cast<int>(state.range(0)), nullptr);
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEconOff)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The same stream with every round audited and the default 1-in-16 deep
/// sentinel sampling; the violation counter of the last iteration must be
/// zero (truthful traffic).
void BM_ServeEconOn(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  std::int64_t probe_rounds = 0;
  std::int64_t violations = 0;
  for (auto _ : state) {
    serve::EconTelemetry econ;
    run_engine(events, static_cast<int>(state.range(0)), &econ);
    const serve::EconSnapshot snapshot = econ.take_snapshot();
    probe_rounds = snapshot.cumulative.probe_rounds;
    violations = snapshot.cumulative.violations;
  }
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["probe_rounds"] = static_cast<double>(probe_rounds);
  state.counters["violations"] = static_cast<double>(violations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ServeEconOn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Paired on/off runs inside each iteration: both legs see the same
/// machine state (cache, frequency), so the eps ratio isolates the plane's
/// cost. overhead_pct is the acceptance-tracked number.
void BM_ServeEconOverhead(benchmark::State& state) {
  const std::vector<serve::ServeEvent> events = canned_events(16);
  const int shards = static_cast<int>(state.range(0));
  std::chrono::nanoseconds off_ns{0};
  std::chrono::nanoseconds on_ns{0};
  for (auto _ : state) {
    const auto off_start = std::chrono::steady_clock::now();
    run_engine(events, shards, nullptr);
    off_ns += std::chrono::steady_clock::now() - off_start;

    serve::EconTelemetry econ;
    const auto on_start = std::chrono::steady_clock::now();
    run_engine(events, shards, &econ);
    on_ns += std::chrono::steady_clock::now() - on_start;
    benchmark::DoNotOptimize(econ.violations());
  }
  const double total_events =
      static_cast<double>(state.iterations()) *
      static_cast<double>(events.size());
  const double eps_off =
      off_ns.count() > 0
          ? total_events / (static_cast<double>(off_ns.count()) / 1e9)
          : 0.0;
  const double eps_on =
      on_ns.count() > 0
          ? total_events / (static_cast<double>(on_ns.count()) / 1e9)
          : 0.0;
  state.counters["eps_off"] = eps_off;
  state.counters["eps_on"] = eps_on;
  state.counters["overhead_pct"] =
      eps_off > 0.0 ? (1.0 - eps_on / eps_off) * 100.0 : 0.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()) * 2);
}
BENCHMARK(BM_ServeEconOverhead)->Arg(1)->Arg(8)->UseRealTime();

/// The per-round sampling decision -- the only sentinel cost paid by
/// rounds that are *not* deep-probed beyond the cheap invariants.
void BM_EconProbeSampled(benchmark::State& state) {
  std::int64_t round = 0;
  std::int64_t sampled = 0;
  for (auto _ : state) {
    sampled += serve::econ_probe_sampled(round++, 16, 0) ? 1 : 0;
    benchmark::DoNotOptimize(sampled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EconProbeSampled);

/// Snapshot roll + JSONL serialization -- the publisher's periodic cost,
/// off the hot path but pinned so cadence tuning has a number.
void BM_EconSnapshotWrite(benchmark::State& state) {
  obs::FakeClock clock;
  serve::EconTelemetryConfig config;
  config.clock = &clock;
  serve::EconTelemetry econ(config);
  econ.attach(4);
  for (auto _ : state) {
    clock.advance_ms(100);
    std::ostringstream os;
    serve::write_econ_snapshot(os, econ.take_snapshot());
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EconSnapshotWrite);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_econ");
}
