// Ablation: how much lookahead buys welfare, and what it costs in
// truthfulness (DESIGN.md Section 5; extends the paper's online-vs-offline
// dichotomy into a spectrum).
//
// For batch sizes w between 1 and m, the batched-matching mechanism is run
// on Table-I workloads next to the paper's two mechanisms. Columns:
// welfare (claimed, mean over repetitions), overpayment ratio, and whether
// the Fig. 4 truthfulness audit passes at that w. The punchline: welfare
// interpolates smoothly, but truthfulness only holds at the extremes
// (w = m, or w = 1 *with Algorithm 2's payments* -- the online mechanism).
#include <iostream>

#include "analysis/metrics.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/batched_matching.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Lookahead ablation: batched matching between the online (w=1) and "
      "offline (w=m) mechanisms.");
  cli.add_int("reps", 20, "repetitions per batch size");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));

  model::WorkloadConfig workload;  // Table-I defaults
  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));
  const model::Scenario fig4 = model::fig4_scenario();

  std::cout << "=== Lookahead ablation (Table-I defaults, " << reps
            << " reps) ===\n\n";
  io::TextTable table({"mechanism", "welfare", "overpayment", "truthful on Fig.4?"});

  const auto measure = [&](const auction::Mechanism& mechanism) {
    RunningStats welfare;
    RunningStats sigma;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
      const model::Scenario s = model::generate_scenario(workload, rng);
      const model::BidProfile bids = s.truthful_bids();
      const analysis::RoundMetrics m =
          analysis::compute_metrics(s, bids, mechanism.run(s, bids));
      welfare.add(m.social_welfare.to_double());
      sigma.add(m.overpayment_ratio);
    }
    const bool truthful =
        analysis::audit_truthfulness(mechanism, fig4).truthful();
    table.add_row({mechanism.name(), io::format_double(welfare.mean(), 1),
                   io::format_double(sigma.mean(), 4),
                   truthful ? "yes" : "NO"});
  };

  measure(auction::OnlineGreedyMechanism{});
  for (const Slot::rep_type w : {1, 2, 5, 10, 25, 50}) {
    measure(auction::BatchedMatchingMechanism(
        auction::BatchedMatchingConfig{w}));
  }
  measure(auction::OfflineVcgMechanism{});
  table.print(std::cout);

  std::cout << "\nwelfare climbs with lookahead and w=50 coincides with the "
               "offline mechanism, but every finite 1 <= w < m is "
               "manipulable (delayed arrivals across batch boundaries); "
               "only Algorithm 2's over-time critical payments make the "
               "no-lookahead row truthful.\n";
  return 0;
}
