// Fig. 10: overpayment ratio sigma vs smartphone arrival rate lambda {4..8}.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_figure_binary(
      "fig10",
      "sigma stays roughly stable in lambda, with the online ratio "
      "decreasing slightly (more phones -> cheaper hires); offline > online",
      argc, argv);
}
