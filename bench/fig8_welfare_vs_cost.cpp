// Fig. 8: social welfare omega vs average of real costs c-bar in {10..50}.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_figure_binary(
      "fig8",
      "welfare decreases as the average real cost grows; offline >= online",
      argc, argv);
}
