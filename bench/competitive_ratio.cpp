// Theorem 6: the online allocation is 1/2-competitive.
//
// Three empirical views:
//  1. the adversarial gadget family where the bound is asymptotically
//     tight (ratio -> 1/2 from above as nu grows);
//  2. the ratio distribution over randomized Table-I-style workloads
//     (min / mean / percentiles, plus a count of sub-1/2 instances, which
//     must be zero);
//  3. an ablation of the allocate_only_profitable knob (DESIGN.md Sec. 5).
#include <iostream>

#include "analysis/charging.hpp"
#include "analysis/competitive.hpp"
#include "common/rng.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli("Empirically verifies Theorem 6 (1/2-competitiveness).");
  cli.add_int("reps", 60, "random instances per study");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "=== Theorem 6: online greedy is 1/2-competitive ===\n\n";

  std::cout << "-- adversarial tight family (3 gadgets per instance) --\n";
  io::TextTable tight({"nu", "online", "offline", "ratio", "(nu-1)/(2nu-3)"});
  for (const std::int64_t nu : {5LL, 10LL, 100LL, 1000LL, 100000LL}) {
    const model::Scenario s = analysis::tight_competitive_scenario(3, nu);
    const analysis::CompetitiveResult r =
        analysis::competitive_ratio(s, s.truthful_bids());
    const double nu_d = static_cast<double>(nu);
    tight.add_row({std::to_string(nu), r.online_welfare.to_string(),
                   r.offline_welfare.to_string(),
                   io::format_double(r.ratio, 6),
                   io::format_double((nu_d - 1.0) / (2.0 * nu_d - 3.0), 6)});
  }
  tight.print(std::cout);
  std::cout << "ratio approaches 1/2 from above: the bound is tight.\n\n";

  std::cout << "-- randomized workloads (" << reps << " instances) --\n";
  model::WorkloadConfig workload;
  workload.num_slots = 30;
  workload.task_value = Money::from_units(50);
  io::TextTable random({"workload", "min", "p10", "mean", "max", "below 1/2"});
  const auto add_study = [&](const std::string& label,
                             const model::WorkloadConfig& w,
                             const auction::OnlineGreedyConfig& config) {
    const analysis::CompetitiveStudy study =
        analysis::study_competitive_ratio(w, reps, seed, config);
    random.add_row({label, io::format_double(study.min_ratio(), 4),
                    io::format_double(study.ratios.quantile(0.1), 4),
                    io::format_double(study.mean_ratio(), 4),
                    io::format_double(study.ratios.stats().max(), 4),
                    std::to_string(study.below_half)});
  };
  add_study("table-I defaults (m=30)", workload, {});
  {
    model::WorkloadConfig sparse = workload;
    sparse.phone_arrival_rate = 3.0;  // tight supply -> lower ratios
    add_study("tight supply (lambda=3)", sparse, {});
  }
  {
    model::WorkloadConfig thin = workload;
    thin.mean_cost = 24.0;  // costs up to 47, close to nu=50: thin margins
    add_study("thin margins (c-bar=24)", thin, {});
  }
  {
    // Beyond Theorem 6's implicit assumption: costs can exceed nu, and the
    // paper-faithful greedy still allocates (negative marginal welfare), so
    // sub-1/2 ratios are possible here...
    model::WorkloadConfig pricey = workload;
    pricey.mean_cost = 40.0;  // costs up to 79 > nu = 50
    add_study("costs may exceed nu (paper-faithful)", pricey, {});
    // ...and the profitable-only ablation (DESIGN.md Sec. 5) restores the
    // positive-weight regime and with it the guarantee.
    auction::OnlineGreedyConfig profitable;
    profitable.allocate_only_profitable = true;
    add_study("ablation: profitable-only, same workload", pricey, profitable);
  }
  random.print(std::cout);

  // Mechanized proof: on a sample of in-scope instances, build the
  // explicit charging certificate (the argument the paper omits) and
  // re-verify every inequality in it.
  {
    model::WorkloadConfig certifiable = workload;
    certifiable.num_slots = 20;
    const Rng parent(seed + 1);
    int verified = 0;
    for (int k = 0; k < 25; ++k) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(k));
      const model::Scenario s = model::generate_scenario(certifiable, rng);
      const model::BidProfile bids = s.truthful_bids();
      const analysis::ChargingCertificate certificate =
          analysis::build_half_competitive_certificate(s, bids);
      analysis::verify_half_competitive_certificate(certificate, s, bids);
      ++verified;
    }
    std::cout << "\ncharging certificates (the omitted Theorem 6 proof, "
                 "mechanized): built and re-verified on "
              << verified << "/25 sampled instances.\n";
  }

  std::cout << "\nTheorem 6 guarantees 'below 1/2' = 0 whenever every cost "
               "is at most nu (first three rows and the ablation); the "
               "paper-faithful rule may dip below 1/2 only when bids exceed "
               "the task value.\n";
  return 0;
}
