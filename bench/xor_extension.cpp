// Extension experiment: what XOR multi-window bidding is worth.
//
// Commuters are typically available in two disjoint windows (morning and
// evening). Under the paper's single-bid rule each phone must offer one of
// them; with XOR bids it offers both (the evening one cheaper -- sensing
// while charging). The bench compares the offline optimum under three
// regimes on the same population: everyone forced to their morning window,
// everyone to their cheaper window, and full XOR bids.
#include <iostream>

#include "auction/offline_vcg.hpp"
#include "auction/xor_bids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "XOR multi-window bids vs the paper's single-bid rule on a two-peak "
      "commuter population.");
  cli.add_int("reps", 20, "repetitions");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));

  constexpr Slot::rep_type kSlots = 20;  // morning 1-6, evening 13-20
  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));

  RunningStats morning_only;
  RunningStats cheaper_only;
  RunningStats xor_bids;
  RunningStats xor_payment;

  for (int rep = 0; rep < reps; ++rep) {
    Rng rng = parent.fork(static_cast<std::uint64_t>(rep));

    // Population: 14 commuters, each with a morning and an evening window;
    // evening is cheaper for most (home charger). Tasks arrive in both
    // peaks.
    model::ScenarioBuilder builder(kSlots);
    builder.value(40);
    const int phones = 14;
    std::vector<auction::XorBid> options;
    for (int i = 0; i < phones; ++i) {
      builder.phone(1, kSlots, 0);  // placeholder true profile
      const auto m_start = static_cast<Slot::rep_type>(rng.uniform_int(1, 3));
      const auto m_end = static_cast<Slot::rep_type>(
          rng.uniform_int(m_start + 1, 6));
      const auto e_start =
          static_cast<Slot::rep_type>(rng.uniform_int(13, 16));
      const auto e_end = static_cast<Slot::rep_type>(
          rng.uniform_int(e_start + 1, kSlots));
      const Money m_cost = Money::from_units(rng.uniform_int(10, 30));
      const Money e_cost = Money::from_units(rng.uniform_int(5, 20));
      options.push_back(auction::XorBid{
          auction::BidOption{SlotInterval::of(m_start, m_end), m_cost},
          auction::BidOption{SlotInterval::of(e_start, e_end), e_cost}});
    }
    for (int k = 0; k < 8; ++k) {
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(1, 6)));
      builder.task(static_cast<Slot::rep_type>(rng.uniform_int(13, kSlots)));
    }
    const model::Scenario s = builder.build();

    // Single-bid regimes: project each XOR bid onto one option.
    model::BidProfile morning(static_cast<std::size_t>(phones),
                              model::Bid{SlotInterval::of(1, 1), Money{}});
    model::BidProfile cheaper = morning;
    for (int i = 0; i < phones; ++i) {
      const auction::XorBid& bid = options[static_cast<std::size_t>(i)];
      morning[static_cast<std::size_t>(i)] =
          model::Bid{bid[0].window, bid[0].cost};
      const auction::BidOption& best =
          bid[0].cost <= bid[1].cost ? bid[0] : bid[1];
      cheaper[static_cast<std::size_t>(i)] =
          model::Bid{best.window, best.cost};
    }

    morning_only.add(
        auction::OfflineVcgMechanism::optimal_claimed_welfare(s, morning)
            .to_double());
    cheaper_only.add(
        auction::OfflineVcgMechanism::optimal_claimed_welfare(s, cheaper)
            .to_double());
    const auction::XorBidProfile profile(options.begin(), options.end());
    xor_bids.add(auction::optimal_xor_welfare(s, profile).to_double());
    xor_payment.add(
        auction::run_xor_vcg(s, profile).payments.empty()
            ? 0.0
            : [&] {
                Money total;
                for (const Money p :
                     auction::run_xor_vcg(s, profile).payments) {
                  total += p;
                }
                return total.to_double();
              }());
  }

  std::cout << "=== XOR multi-window bids (two-peak commuters, " << reps
            << " reps) ===\n\n";
  io::TextTable table({"bidding regime", "optimal welfare (mean)"});
  table.add_row({"single bid: morning window",
                 io::format_double(morning_only.mean(), 1)});
  table.add_row({"single bid: cheaper window",
                 io::format_double(cheaper_only.mean(), 1)});
  table.add_row({"XOR: both windows", io::format_double(xor_bids.mean(), 1)});
  table.print(std::cout);
  std::cout << "\nXOR payout (VCG, mean): "
            << io::format_double(xor_payment.mean(), 1)
            << ". Forcing a single window wastes whichever peak the phone "
               "did not offer; XOR bids let the optimum spread the same "
               "population across both peaks -- and Section IV's machinery "
               "handles it unchanged (best-option matching).\n";
  return 0;
}
