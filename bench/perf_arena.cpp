// Strategic-agent arena benches: what does one (mechanism x policy mix)
// cell-round cost, and how does the full grid scale across worker threads?
//
// BM_ArenaCellRound prices the per-round unit of work (scenario draw +
// hash assignment + reports + mechanism run + metrics + deviation probes)
// for each headline mechanism; BM_ArenaGrid runs the whole
// 3-mechanism x 2-mix grid through run_arena at 1 and 4 workers. The
// thread counts change wall time only: the arena's determinism contract
// pins results and counters to the serial run, so the counter pass (see
// telemetry_main.hpp) records identical arena.rounds /
// arena.deviation_runs totals at every arg -- the deterministic baseline
// bench-diff gates on.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arena/arena.hpp"
#include "arena/match.hpp"
#include "arena/population.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

arena::MatchConfig bench_match() {
  arena::MatchConfig match;
  match.seed = 42;
  match.probes_per_policy = 4;
  match.workload.num_slots = 12;
  match.workload.phone_arrival_rate = 4.0;
  match.workload.task_arrival_rate = 2.0;
  // Reserve at the task value: the exactly-truthful greedy configuration
  // (see docs/arena.md), so probe outcomes -- and with them the probe
  // counters -- are pinned.
  match.greedy.reserve_price = match.workload.task_value;
  return match;
}

const std::vector<std::string>& bench_mechanisms() {
  static const std::vector<std::string> specs = {"online", "offline",
                                                 "second-price"};
  return specs;
}

/// One cell-round per iteration for mechanism arg 0 (index into
/// bench_mechanisms) under the shaded mix, cycling through rounds so the
/// adaptive timing pass sees the workload's natural variance.
void BM_ArenaCellRound(benchmark::State& state) {
  const arena::MatchConfig match = bench_match();
  const auto mechanism = arena::make_arena_mechanism(
      bench_mechanisms()[static_cast<std::size_t>(state.range(0))], match);
  const arena::PolicyMix mix =
      arena::PolicyMix::parse("shaded=truthful:3,shade(1.5):1");
  constexpr std::int64_t kRoundCycle = 16;
  std::int64_t round = 0;
  for (auto _ : state) {
    const arena::RoundCellStats stats =
        arena::evaluate_round(match, *mechanism, mix, round);
    benchmark::DoNotOptimize(stats.welfare_micros);
    round = (round + 1) % kRoundCycle;
  }
  state.SetLabel(mechanism->name());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaCellRound)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);

/// The full grid: 3 mechanisms x 2 mixes x kRounds rounds plus the shared
/// VCG reference pass, at arg worker threads. Identical results at every
/// arg by the determinism contract; only wall time moves.
void BM_ArenaGrid(benchmark::State& state) {
  arena::ArenaConfig config;
  config.match = bench_match();
  config.rounds = 16;
  config.threads = static_cast<int>(state.range(0));
  config.mechanisms = bench_mechanisms();
  config.mixes = {"truthful", "shaded=truthful:3,shade(1.5):1"};
  for (auto _ : state) {
    const arena::ArenaResult result = arena::run_arena(config);
    benchmark::DoNotOptimize(result.cells.size());
  }
  state.counters["cells"] = 6.0;
  state.SetItemsProcessed(state.iterations() * config.rounds * 6);
}
BENCHMARK(BM_ArenaGrid)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_arena");
}
