// Extension experiment: how much welfare does task patience buy back?
//
// The paper's tasks must be served the slot they arrive (P = 0). On
// supply-constrained rounds this wastes demand: a task that misses its
// slot is lost even if a cheap phone shows up a moment later. Sweeping the
// patience P shows the expiry rate collapsing and both the greedy and the
// offline-optimal welfare climbing, while the greedy-to-optimal ratio
// stays high -- EDF-plus-cheapest is a good online policy for the patient
// model too.
#include <iostream>

#include "auction/patience_greedy.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/workload.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  io::CliParser cli(
      "Task-patience ablation: welfare and expiry rate vs patience P "
      "(P = 0 is the paper's model).");
  cli.add_int("reps", 15, "repetitions per patience value");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));

  model::WorkloadConfig workload;
  workload.num_slots = 25;
  workload.phone_arrival_rate = 2.0;  // scarce, bursty supply
  workload.task_arrival_rate = 2.0;
  workload.mean_cost = 15.0;
  workload.mean_active_length = 3.0;
  workload.task_value = Money::from_units(40);

  std::cout << "=== Task patience ablation (m=25, lambda=2 vs lambda_t=2, "
            << reps << " reps) ===\n\n";

  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));
  io::TextTable table({"patience", "greedy welfare", "optimal welfare",
                       "greedy/optimal", "served %", "payout"});
  for (const Slot::rep_type patience : {0, 1, 2, 4, 8}) {
    RunningStats greedy_welfare;
    RunningStats optimal_welfare;
    RunningStats served;
    RunningStats payout;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
      const model::Scenario s = model::generate_scenario(workload, rng);
      const model::BidProfile bids = s.truthful_bids();
      const auction::PatienceGreedyMechanism mechanism(
          auction::PatienceConfig{patience, {}});
      const auction::Outcome outcome = mechanism.run(s, bids);
      greedy_welfare.add(outcome.social_welfare(s).to_double());
      optimal_welfare.add(
          auction::optimal_patience_welfare(s, bids, patience).to_double());
      if (s.task_count() > 0) {
        served.add(100.0 * outcome.allocation.allocated_count() /
                   s.task_count());
      }
      payout.add(outcome.total_payment().to_double());
    }
    table.row()
        .cell(static_cast<std::int64_t>(patience))
        .cell(greedy_welfare.mean(), 1)
        .cell(optimal_welfare.mean(), 1)
        .cell(greedy_welfare.mean() / optimal_welfare.mean(), 3)
        .cell(served.mean(), 1)
        .cell(payout.mean(), 1);
  }
  table.print(std::cout);
  std::cout << "\npatience converts expiries into welfare: the first extra "
               "slot buys the most, and the EDF-plus-cheapest greedy keeps "
               "a high fraction of the clairvoyant optimum at every P.\n";
  return 0;
}
