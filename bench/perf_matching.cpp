// Computational-efficiency microbenches for the matching substrate
// (Theorem 3: the optimal winning-bids determination is polynomial).
//
// Benchmarks the Hungarian solve as a function of instance size, the
// incremental column-removal query against a full re-solve (the ablation
// behind DESIGN.md Section 5, item 2), and the min-cost-flow cross-check
// solver for scale comparison.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "matching/hungarian.hpp"
#include "matching/auction_algorithm.hpp"
#include "matching/min_cost_flow.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

matching::WeightMatrix random_graph(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  matching::WeightMatrix g(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.bernoulli(0.6)) {
        g.set(r, c, Money::from_units(rng.uniform_int(1, 100)));
      }
    }
  }
  return g;
}

void BM_HungarianSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const matching::WeightMatrix g = random_graph(n, 2 * n, 42);
  for (auto _ : state) {
    matching::MaxWeightMatcher matcher(g);
    benchmark::DoNotOptimize(matcher.total_weight());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HungarianSolve)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_VcgMarginal_Incremental(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const matching::WeightMatrix g = random_graph(n, 2 * n, 43);
  matching::MaxWeightMatcher matcher(g);
  matcher.solve();
  int col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.total_weight_without_column(col));
    col = (col + 1) % g.cols();
  }
}
BENCHMARK(BM_VcgMarginal_Incremental)->RangeMultiplier(2)->Range(8, 128);

void BM_VcgMarginal_FullResolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const matching::WeightMatrix g = random_graph(n, 2 * n, 43);
  int col = 0;
  for (auto _ : state) {
    matching::MaxWeightMatcher fresh(g.without_column(col));
    benchmark::DoNotOptimize(fresh.total_weight());
    col = (col + 1) % g.cols();
  }
}
BENCHMARK(BM_VcgMarginal_FullResolve)->RangeMultiplier(2)->Range(8, 128);

void BM_MinCostFlowMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const matching::WeightMatrix g = random_graph(n, 2 * n, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::max_weight_matching_via_flow(g));
  }
}
BENCHMARK(BM_MinCostFlowMatching)->RangeMultiplier(2)->Range(8, 64);

void BM_AuctionAlgorithmMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const matching::WeightMatrix g = random_graph(n, 2 * n, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::auction_max_weight_matching(g));
  }
}
BENCHMARK(BM_AuctionAlgorithmMatching)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_matching");
}
