// Fig. 11: overpayment ratio sigma vs average of real costs c-bar {10..50}.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_figure_binary(
      "fig11",
      "the offline mechanism's overpayment ratio exceeds the online one's "
      "across the cost range",
      argc, argv);
}
