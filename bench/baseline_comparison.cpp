// The whole mechanism zoo side by side on the Table-I workload: the
// paper's two designs, the untruthful per-slot second price, the naive
// allocation baselines, and the truthful-but-rigid posted-price family.
// One table answers "what does each design property cost in welfare and
// payments?"
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/truthfulness.hpp"
#include "auction/naive_baselines.hpp"
#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "auction/posted_price.hpp"
#include "auction/second_price.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "io/cli.hpp"
#include "io/table.hpp"
#include "model/paper_examples.hpp"
#include "model/workload.hpp"
#include "telemetry_scope.hpp"

int main(int argc, char** argv) {
  using namespace mcs;

  // Consumes --telemetry-out before the strict flag parser below; with it,
  // the mechanism zoo's work counters land in BENCH_telemetry.json.
  const mcs_bench::TelemetryScope telemetry(argc, argv, "baseline_comparison");

  io::CliParser cli(
      "All mechanisms side by side on the Table-I workload: welfare, "
      "payments, completion, and the Fig. 4 truthfulness verdict.");
  cli.add_int("reps", 15, "repetitions");
  cli.add_int("seed", 42, "base RNG seed");
  if (!cli.parse(argc, argv)) return 0;
  const int reps = static_cast<int>(cli.get_int("reps"));

  const model::WorkloadConfig workload;  // Table-I defaults
  const Rng parent(static_cast<std::uint64_t>(cli.get_int("seed")));
  const model::Scenario fig4 = model::fig4_scenario();

  std::vector<std::unique_ptr<auction::Mechanism>> mechanisms;
  mechanisms.push_back(std::make_unique<auction::OnlineGreedyMechanism>());
  mechanisms.push_back(std::make_unique<auction::OfflineVcgMechanism>());
  mechanisms.push_back(std::make_unique<auction::SecondPriceBaseline>());
  // Posted prices at the 25th/50th/75th percentile of the cost range.
  mechanisms.push_back(
      std::make_unique<auction::PostedPriceMechanism>(Money::from_units(13)));
  mechanisms.push_back(
      std::make_unique<auction::PostedPriceMechanism>(Money::from_units(25)));
  mechanisms.push_back(
      std::make_unique<auction::PostedPriceMechanism>(Money::from_units(37)));
  mechanisms.push_back(std::make_unique<auction::FifoAllocationMechanism>());
  mechanisms.push_back(
      std::make_unique<auction::RandomAllocationMechanism>(1));

  std::cout << "=== Mechanism comparison (Table-I defaults, " << reps
            << " reps) ===\n\n";
  io::TextTable table({"mechanism", "welfare", "payment", "completion %",
                       "truthful on Fig.4?"});
  for (const auto& mechanism : mechanisms) {
    RunningStats welfare;
    RunningStats payment;
    RunningStats completion;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = parent.fork(static_cast<std::uint64_t>(rep));
      const model::Scenario s = model::generate_scenario(workload, rng);
      const model::BidProfile bids = s.truthful_bids();
      const analysis::RoundMetrics m =
          analysis::compute_metrics(s, bids, mechanism->run(s, bids));
      welfare.add(m.social_welfare.to_double());
      payment.add(m.total_payment.to_double());
      completion.add(100.0 * m.completion_rate);
    }
    const bool truthful =
        analysis::audit_truthfulness(*mechanism, fig4).truthful();
    table.add_row({mechanism->name(), io::format_double(welfare.mean(), 1),
                   io::format_double(payment.mean(), 1),
                   io::format_double(completion.mean(), 1),
                   truthful ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout
      << "\nReading the table: the paper's mechanisms combine near-optimal "
         "welfare with truthfulness; second price matches greedy welfare "
         "but is manipulable; posted prices are truthful but either starve "
         "tasks (low p) or overpay (high p); cost-blind FIFO/random burn "
         "welfare. (FIFO/random pay first-price, so their audit verdict "
         "reflects cost-misreport incentives.)\n";
  return 0;
}
