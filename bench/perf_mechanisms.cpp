// Computational-efficiency microbenches for the full mechanisms
// (Theorems 3 and 7): end-to-end run time of the offline VCG and online
// greedy mechanisms as the round scales, plus the incremental-vs-naive
// VCG payment ablation at mechanism level.
#include <benchmark/benchmark.h>

#include "auction/offline_vcg.hpp"
#include "auction/online_greedy.hpp"
#include "common/rng.hpp"
#include "model/workload.hpp"
#include "telemetry_main.hpp"

namespace {

using namespace mcs;

model::Scenario scaled_scenario(int slots, std::uint64_t seed) {
  model::WorkloadConfig workload;
  workload.num_slots = slots;
  Rng rng(seed);
  return model::generate_scenario(workload, rng);
}

void BM_OfflineVcg(benchmark::State& state) {
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OfflineVcgMechanism mechanism;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(s, bids));
  }
  state.counters["phones"] = static_cast<double>(s.phone_count());
  state.counters["tasks"] = static_cast<double>(s.task_count());
}
BENCHMARK(BM_OfflineVcg)->Arg(10)->Arg(20)->Arg(40);

void BM_OfflineVcg_NaiveMarginals(benchmark::State& state) {
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OfflineVcgMechanism mechanism(
      auction::OfflineVcgConfig{.naive_marginals = true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(s, bids));
  }
}
BENCHMARK(BM_OfflineVcg_NaiveMarginals)->Arg(10)->Arg(20)->Arg(40);

void BM_OnlineGreedy(benchmark::State& state) {
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  const auction::OnlineGreedyMechanism mechanism;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(s, bids));
  }
  state.counters["phones"] = static_cast<double>(s.phone_count());
  state.counters["tasks"] = static_cast<double>(s.task_count());
}
BENCHMARK(BM_OnlineGreedy)->Arg(10)->Arg(20)->Arg(40);

void BM_OnlineAllocationOnly(benchmark::State& state) {
  // Algorithm 1 without payments: what the platform runs per slot online.
  const model::Scenario s =
      scaled_scenario(static_cast<int>(state.range(0)), 7);
  const model::BidProfile bids = s.truthful_bids();
  for (auto _ : state) {
    benchmark::DoNotOptimize(auction::run_greedy_allocation(s, bids));
  }
}
BENCHMARK(BM_OnlineAllocationOnly)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

}  // namespace

int main(int argc, char** argv) {
  return mcs_bench::telemetry_main(argc, argv, "perf_mechanisms");
}
