// Fig. 7: social welfare omega vs smartphone arrival rate lambda in {4..8}.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mcs::bench::run_figure_binary(
      "fig7",
      "welfare increases with lambda (more phones -> cheaper hires); "
      "offline >= online",
      argc, argv);
}
