// Shared driver for the six evaluation-figure binaries.
//
// Each figN binary calls run_figure_binary with its figure id and the
// paper's expected qualitative shape; the driver parses the common flags,
// runs the sweep, prints the series as a table, optionally dumps CSV, and
// echoes the expectation so EXPERIMENTS.md can be checked against the
// output directly.
#pragma once

#include <iostream>
#include <string>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "sim/experiments.hpp"

namespace mcs::bench {

inline int run_figure_binary(const std::string& figure_id,
                             const std::string& expected_shape, int argc,
                             const char* const* argv) {
  io::CliParser cli("Reproduces " + figure_id +
                    " of 'Towards Truthful Mechanisms for Mobile "
                    "Crowdsourcing with Dynamic Smartphones' (ICDCS 2014).");
  cli.add_int("reps", 50, "simulation repetitions per sweep point");
  cli.add_int("seed", 42, "base RNG seed");
  cli.add_string("csv", "", "also write the series to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const sim::FigureSpec& spec = sim::figure(figure_id);
  sim::SimulationConfig base;
  base.repetitions = static_cast<int>(cli.get_int("reps"));
  base.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "=== " << spec.id << ": " << spec.title << " ===\n"
            << "Table-I defaults, " << base.repetitions
            << " repetitions per point, seed " << base.base_seed << "\n\n";

  const sim::FigureSeries series = sim::run_figure(spec, base);
  series.to_table().print(std::cout);
  std::cout << '\n' << series.to_chart();
  std::cout << "\nPaper's qualitative shape: " << expected_shape << '\n';

  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    io::write_csv_file(csv_path, series.header, series.rows);
    std::cout << "Series written to " << csv_path << '\n';
  }
  return 0;
}

}  // namespace mcs::bench
