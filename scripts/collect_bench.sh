#!/usr/bin/env bash
# Runs the perf_* microbenches with telemetry enabled and merges their
# per-binary reports into one BENCH_telemetry.json at the repo root, so
# future changes have a machine-readable perf baseline to regress against.
#
# Usage: scripts/collect_bench.sh [build-dir] [extra benchmark args...]
#   e.g. scripts/collect_bench.sh build --benchmark_min_time=0.05
#   e.g. scripts/collect_bench.sh --benchmark_min_time=0.05   (build dir defaults to 'build')
set -euo pipefail

cd "$(dirname "$0")/.."
# A leading flag is a benchmark argument, not the build dir: keep it in $@.
if [ $# -ge 1 ] && [ "${1#-}" = "$1" ]; then
  BUILD_DIR="$1"
  shift
else
  BUILD_DIR=build
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

BENCHES=(perf_matching perf_mechanisms)
for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin missing or not executable" >&2
    exit 1
  fi
  echo "##### $bench #####"
  "$bin" --telemetry-out="$TMP_DIR/$bench.json" "$@"
done

# Merge: one wrapper object with each binary's mcs.telemetry.v1 report as
# a field. Plain concatenation keeps this dependency-free.
OUT=BENCH_telemetry.json
{
  printf '{"schema":"mcs.bench_telemetry.v1"'
  for bench in "${BENCHES[@]}"; do
    printf ',"%s":' "$bench"
    # Each report is a single JSON object followed by a newline.
    tr -d '\n' < "$TMP_DIR/$bench.json"
  done
  printf '}\n'
} > "$OUT"

echo
echo "Merged telemetry written to $OUT"
