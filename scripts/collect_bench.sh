#!/usr/bin/env bash
# Runs the telemetry-reporting benches and merges their per-binary reports
# into one mcs.bench_telemetry.v1 document (default: BENCH_telemetry.json
# at the repo root) -- the machine-readable perf baseline that
# `mcs_cli bench-diff` regresses future changes against.
#
# Bench discovery: every google-benchmark binary matching
# $BUILD_DIR/bench/perf_* by glob (currently perf_matching,
# perf_mechanisms, perf_payments -- the shared-prefix vs full-replay
# Algorithm-2 ablation -- perf_serve, the streaming engine's hot path,
# and perf_serve_latency, the live-telemetry-plane overhead and latency
# quantiles), plus the opted-in plain benches listed in OPT_IN_BENCHES
# (binaries that wire bench/telemetry_scope.hpp).
#
# The google-benchmark binaries run two passes (bench/telemetry_main.hpp):
# an adaptive timing pass honouring the extra benchmark args, whose own
# --benchmark_out JSON timings are captured under $BUILD_DIR/bench_timings/,
# and a pinned single-iteration counter pass that makes the reported work
# counters deterministic run to run.
#
# Usage: scripts/collect_bench.sh [build-dir] [extra benchmark args...]
#   e.g. scripts/collect_bench.sh build --benchmark_min_time=0.05
#   e.g. scripts/collect_bench.sh --benchmark_min_time=0.05   (build dir defaults to 'build')
# Env:
#   MCS_BENCH_OUT=path   merged report destination (default BENCH_telemetry.json);
#                        point it elsewhere to collect a candidate without
#                        overwriting the committed baseline.
set -euo pipefail

cd "$(dirname "$0")/.."
# A leading flag is a benchmark argument, not the build dir: keep it in $@.
if [ $# -ge 1 ] && [ "${1#-}" = "$1" ]; then
  BUILD_DIR="$1"
  shift
else
  BUILD_DIR=build
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

OUT="${MCS_BENCH_OUT:-BENCH_telemetry.json}"
TIMINGS_DIR="$BUILD_DIR/bench_timings"
mkdir -p "$TIMINGS_DIR"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

# google-benchmark binaries: discovered by glob, run with benchmark args.
GBENCHES=()
for bin in "$BUILD_DIR"/bench/perf_*; do
  [ -f "$bin" ] && [ -x "$bin" ] && GBENCHES+=("$(basename "$bin")")
done
if [ "${#GBENCHES[@]}" -eq 0 ]; then
  echo "error: no perf_* bench binaries under $BUILD_DIR/bench" >&2
  exit 1
fi

# Every bench the committed baseline covers must be present: a silently
# skipped binary would make the merged report lose keys and bench-diff
# would read the hole as "this bench was deleted", not "the build broke".
EXPECTED_GBENCHES=(perf_arena perf_econ perf_matching perf_mechanisms
                   perf_payments perf_serve perf_serve_latency perf_trace)
for expected in "${EXPECTED_GBENCHES[@]}"; do
  found=0
  for bench in "${GBENCHES[@]}"; do
    [ "$bench" = "$expected" ] && found=1 && break
  done
  if [ "$found" -eq 0 ]; then
    echo "error: expected bench binary '$expected' missing from $BUILD_DIR/bench;" \
         "build it (cmake --build $BUILD_DIR --target $expected) or update" \
         "EXPECTED_GBENCHES in scripts/collect_bench.sh" >&2
    exit 1
  fi
done

# Plain (non-google-benchmark) benches that report telemetry via
# bench/telemetry_scope.hpp; they take no benchmark args.
OPT_IN_BENCHES=(truthfulness_audit baseline_comparison)

for bench in "${GBENCHES[@]}"; do
  echo "##### $bench #####"
  "$BUILD_DIR/bench/$bench" \
      --telemetry-out="$TMP_DIR/$bench.json" \
      --benchmark_out="$TIMINGS_DIR/$bench.json" \
      --benchmark_out_format=json "$@"
done
for bench in "${OPT_IN_BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin missing or not executable" >&2
    exit 1
  fi
  echo "##### $bench #####"
  "$bin" --telemetry-out="$TMP_DIR/$bench.json"
done

# Merge: one wrapper object with each binary's mcs.telemetry.v1 report as
# a field, in sorted name order so the document is deterministic. Plain
# concatenation keeps this dependency-free.
ALL_BENCHES="$(printf '%s\n' "${GBENCHES[@]}" "${OPT_IN_BENCHES[@]}" | sort)"
{
  printf '{"schema":"mcs.bench_telemetry.v1"'
  for bench in $ALL_BENCHES; do
    printf ',"%s":' "$bench"
    # Each report is a single JSON object followed by a newline.
    tr -d '\n' < "$TMP_DIR/$bench.json"
  done
  printf '}\n'
} > "$OUT"

echo
echo "Merged telemetry written to $OUT (timing JSON under $TIMINGS_DIR/)"
