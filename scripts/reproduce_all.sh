#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the full test suite, then
# every table/figure/ablation bench, teeing the outputs the repository's
# EXPERIMENTS.md is written against.
#
# Usage: scripts/reproduce_all.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

for b in "$BUILD_DIR"/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo
    echo "##### $(basename "$b") #####"
    "$b"
  fi
done 2>&1 | tee bench_output.txt

echo
echo "Done. See test_output.txt and bench_output.txt."
